//! Figure 11: compile-time scalability of the optimal (R-SMT*) and greedy
//! (GreedyE*) methods on randomly generated circuits with 4-128 qubits and
//! 128-2048 gates.
//!
//! The exact solver's budget is capped (like the paper's 3-hour SMT runs)
//! so the sweep finishes in minutes; budget-limited points are marked with
//! an asterisk and report the time spent before the cap.
//!
//! Both sweeps are compile-only [`SweepPlan`]s with a per-circuit grid
//! machine (the machine grows with the workload); one [`Session`] shares
//! the machine snapshots between them.

use nisq_bench::format_table;
use nisq_core::CompilerConfig;
use nisq_exp::{CircuitSpec, Report, Session, SweepPlan};
use nisq_ir::{random_circuit, RandomCircuitConfig};
use std::time::Duration;

const GATE_COUNTS: [usize; 5] = [128, 256, 512, 1024, 2048];

/// A compile-only plan over random `(qubits, gates)` instances for one
/// configuration, on grids sized to each instance.
fn scaling_plan(label: &str, config: CompilerConfig, qubit_counts: &[usize]) -> SweepPlan {
    let mut plan = SweepPlan::new().config(label, config).grid_per_circuit();
    for &qubits in qubit_counts {
        for &gates in &GATE_COUNTS {
            plan = plan.circuit(CircuitSpec::new(
                format!("{qubits}q/{gates}g"),
                random_circuit(RandomCircuitConfig::new(qubits, gates, 7)),
            ));
        }
    }
    plan
}

/// Renders one sweep as a machine-size × gate-count table of place-pass
/// microseconds, marking budget-capped points with `*`.
fn rows_for(
    report: &Report,
    label: &str,
    qubit_counts: &[usize],
    budget: Option<Duration>,
) -> Vec<Vec<String>> {
    qubit_counts
        .iter()
        .map(|qubits| {
            let mut cells = vec![format!("{qubits} qubits")];
            for gates in GATE_COUNTS {
                let cell = report.require(&format!("{qubits}q/{gates}g"), label, 0);
                let capped = budget.is_some_and(|b| cell.place_us >= b.as_secs_f64() * 1e6);
                cells.push(format!(
                    "{}{}",
                    cell.place_us as u128,
                    if capped { "*" } else { "" }
                ));
            }
            cells
        })
        .collect()
}

fn main() {
    let smt_qubits = [4usize, 8, 16, 32];
    let greedy_qubits = [4usize, 8, 16, 32, 64, 128];
    let budget = Duration::from_secs(
        std::env::var("NISQ_SOLVER_BUDGET_SECS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(20),
    );

    println!("Figure 11: mapper (place-pass) time in microseconds on random circuits\n");

    let mut session = Session::new();
    let smt_config = CompilerConfig::r_smt_star(0.5).with_solver_budget(u64::MAX, Some(budget));
    let smt_report = session
        .run(&scaling_plan("R-SMT*", smt_config, &smt_qubits))
        .expect("random circuits compile");
    let greedy_report = session
        .run(&scaling_plan(
            "GreedyE*",
            CompilerConfig::greedy_e(),
            &greedy_qubits,
        ))
        .expect("random circuits compile");

    let headers: Vec<String> = std::iter::once("Machine".to_string())
        .chain(GATE_COUNTS.iter().map(|g| format!("{g} gates")))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();

    println!(
        "R-SMT* (exact solver, budget {}s per point; * = budget hit)\n",
        budget.as_secs()
    );
    println!(
        "{}",
        format_table(
            &header_refs,
            &rows_for(&smt_report, "R-SMT*", &smt_qubits, Some(budget))
        )
    );

    println!("GreedyE* (heuristic)\n");
    println!(
        "{}",
        format_table(
            &header_refs,
            &rows_for(&greedy_report, "GreedyE*", &greedy_qubits, None)
        )
    );
    println!(
        "The paper reports the SMT approach needing hours at 32 qubits while the greedy \
         heuristics stay under one second everywhere; the same separation (orders of \
         magnitude, growing with qubit count) should be visible above."
    );
}
