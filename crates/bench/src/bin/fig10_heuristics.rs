//! Figure 10: success rate of the calibration-aware greedy heuristics
//! (GreedyE*, GreedyV*) compared with R-SMT* (omega = 0.5).

use nisq_bench::{fmt3, format_table, geomean, ibmq16_on_day, run_benchmark, DEFAULT_TRIALS};
use nisq_core::CompilerConfig;
use nisq_ir::Benchmark;

fn main() {
    let machine = ibmq16_on_day(0);
    let trials = std::env::var("NISQ_TRIALS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_TRIALS);

    let configs = [
        ("R-SMT* w=0.5", CompilerConfig::r_smt_star(0.5)),
        ("GreedyE*", CompilerConfig::greedy_e()),
        ("GreedyV*", CompilerConfig::greedy_v()),
    ];

    let mut rows = Vec::new();
    let mut e_ratio = Vec::new();
    let mut v_ratio = Vec::new();
    for benchmark in Benchmark::all() {
        let mut cells = vec![benchmark.name().to_string()];
        let mut rates = Vec::new();
        for (_, config) in &configs {
            let outcome = run_benchmark(&machine, *config, benchmark, trials, 11);
            rates.push(outcome.success_rate);
            cells.push(fmt3(outcome.success_rate));
        }
        e_ratio.push(rates[1].max(1e-4) / rates[0].max(1e-4));
        v_ratio.push(rates[2].max(1e-4) / rates[0].max(1e-4));
        rows.push(cells);
    }

    println!("Figure 10: success rate of noise-aware heuristics ({trials} trials, day 0)\n");
    println!(
        "{}",
        format_table(
            &["Benchmark", "R-SMT* w=0.5", "GreedyE*", "GreedyV*"],
            &rows
        )
    );
    println!(
        "GreedyE* achieves {:.2}x of R-SMT*'s success rate on geomean (paper: comparable, \
         occasionally better); GreedyV* achieves {:.2}x (paper: GreedyE* > GreedyV*).",
        geomean(&e_ratio),
        geomean(&v_ratio)
    );
}
