//! Figure 10: success rate of the calibration-aware greedy heuristics
//! (GreedyE*, GreedyV*) compared with R-SMT* (omega = 0.5).

use nisq_bench::{fmt3, format_table, geomean, trials_from_env, DEFAULT_TRIALS};
use nisq_core::CompilerConfig;
use nisq_exp::{Session, SweepPlan};
use nisq_ir::Benchmark;

fn main() {
    let trials = trials_from_env(DEFAULT_TRIALS);
    let configs = [
        ("R-SMT* w=0.5", CompilerConfig::r_smt_star(0.5)),
        ("GreedyE*", CompilerConfig::greedy_e()),
        ("GreedyV*", CompilerConfig::greedy_v()),
    ];
    let plan = SweepPlan::new()
        .benchmarks(Benchmark::all())
        .with_configs(configs)
        .with_trials(trials)
        .fixed_sim_seed(11);
    let report = Session::new().run(&plan).expect("benchmarks fit on IBMQ16");

    let mut rows = Vec::new();
    let mut e_ratio = Vec::new();
    let mut v_ratio = Vec::new();
    for benchmark in Benchmark::all() {
        let rates: Vec<f64> = configs
            .iter()
            .map(|(label, _)| report.require(benchmark.name(), label, 0).success())
            .collect();
        e_ratio.push(rates[1].max(1e-4) / rates[0].max(1e-4));
        v_ratio.push(rates[2].max(1e-4) / rates[0].max(1e-4));
        let mut cells = vec![benchmark.name().to_string()];
        cells.extend(rates.iter().map(|&r| fmt3(r)));
        rows.push(cells);
    }

    println!("Figure 10: success rate of noise-aware heuristics ({trials} trials, day 0)\n");
    println!(
        "{}",
        format_table(
            &["Benchmark", "R-SMT* w=0.5", "GreedyE*", "GreedyV*"],
            &rows
        )
    );
    println!(
        "GreedyE* achieves {:.2}x of R-SMT*'s success rate on geomean (paper: comparable, \
         occasionally better); GreedyV* achieves {:.2}x (paper: GreedyE* > GreedyV*).",
        geomean(&e_ratio),
        geomean(&v_ratio)
    );
}
