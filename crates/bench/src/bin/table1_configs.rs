//! Table 1: the compiler configurations used in the study.
//!
//! The configuration axis of every figure's sweep plan, rendered as a
//! table; [`SweepPlan::table1_configs`] is the single source of truth for
//! the six configurations and their labels.

use nisq_bench::format_table;
use nisq_exp::SweepPlan;

fn main() {
    println!("Table 1: compiler configurations\n");
    let plan = SweepPlan::new().table1_configs();
    let rows: Vec<Vec<String>> = plan
        .configs()
        .iter()
        .map(|(label, config)| {
            let objective = match config.algorithm {
                nisq_core::Algorithm::Qiskit => "heuristic, minimize duration",
                nisq_core::Algorithm::TSmt | nisq_core::Algorithm::TSmtStar => {
                    "optimal (solver), minimize duration"
                }
                nisq_core::Algorithm::RSmtStar => "optimal (solver), maximize reliability",
                nisq_core::Algorithm::GreedyV | nisq_core::Algorithm::GreedyE => {
                    "heuristic, maximize reliability"
                }
                _ => "other",
            };
            let params = match config.algorithm {
                nisq_core::Algorithm::RSmtStar => {
                    format!("routing {}, omega {}", config.routing, config.omega)
                }
                _ => format!("routing {}", config.routing),
            };
            vec![
                label.clone(),
                objective.to_string(),
                params,
                if config.algorithm.is_calibration_aware() {
                    "yes".to_string()
                } else {
                    "no".to_string()
                },
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &["Algorithm", "Objective", "Parameters", "Calibration-aware"],
            &rows
        )
    );
}
