//! Figure 5: measured success rate of Qiskit, T-SMT* and R-SMT* (omega =
//! 0.5) on all twelve benchmarks.
//!
//! The paper reports R-SMT* beating Qiskit on every benchmark with a 2.9x
//! geometric-mean improvement (up to 18x); the simulated reproduction should
//! preserve that ordering and a comparable improvement factor.

use nisq_bench::{fmt3, format_table, geomean, trials_from_env, DEFAULT_TRIALS};
use nisq_core::{CompilerConfig, RouteSelection};
use nisq_exp::{Session, SweepPlan};
use nisq_ir::Benchmark;

fn main() {
    let trials = trials_from_env(DEFAULT_TRIALS);
    let plan = SweepPlan::new()
        .benchmarks(Benchmark::all())
        .config("Qiskit", CompilerConfig::qiskit())
        .config(
            "T-SMT*",
            CompilerConfig::t_smt_star(RouteSelection::OneBendPaths),
        )
        .config("R-SMT* w=0.5", CompilerConfig::r_smt_star(0.5))
        .with_trials(trials)
        .fixed_sim_seed(42);
    let report = Session::new().run(&plan).expect("benchmarks fit on IBMQ16");

    let mut rows = Vec::new();
    let mut improvements = Vec::new();
    let mut improvements_vs_tsmt = Vec::new();
    for benchmark in Benchmark::all() {
        let rates: Vec<f64> = plan
            .configs()
            .iter()
            .map(|(label, _)| report.require(benchmark.name(), label, 0).success())
            .collect();
        let qiskit = rates[0].max(1e-4);
        let t_smt_star = rates[1].max(1e-4);
        let r_smt_star = rates[2];
        improvements.push(r_smt_star / qiskit);
        improvements_vs_tsmt.push(r_smt_star / t_smt_star);
        let mut cells = vec![benchmark.name().to_string()];
        cells.extend(rates.iter().map(|&r| fmt3(r)));
        cells.push(format!("{:.2}x", r_smt_star / qiskit));
        rows.push(cells);
    }

    println!(
        "Figure 5: success rate per benchmark ({} trials, day 0 calibration)\n",
        trials
    );
    println!(
        "{}",
        format_table(
            &[
                "Benchmark",
                "Qiskit",
                "T-SMT*",
                "R-SMT* w=0.5",
                "R-SMT*/Qiskit"
            ],
            &rows
        )
    );
    println!(
        "Geomean improvement of R-SMT* over Qiskit: {:.2}x (paper: 2.9x geomean, up to 18x); max {:.2}x",
        geomean(&improvements),
        improvements.iter().cloned().fold(0.0, f64::max)
    );
    println!(
        "Geomean improvement of R-SMT* over T-SMT*: {:.2}x (paper: R-SMT* wins on all benchmarks)",
        geomean(&improvements_vs_tsmt)
    );
}
