//! Figure 1: daily variations in qubit coherence time (T2) and CNOT gate
//! error rates over ~25 calibration days, for selected qubits and edges.

use nisq_bench::{format_table, ibmq16_calibration_days};
use nisq_machine::{EdgeId, HwQubit};

fn main() {
    let days = 25;
    let snapshots = ibmq16_calibration_days(days);

    // The paper plots qubits Q0, Q4, Q9, Q13 and CNOTs (5,4), (7,10), (3,14).
    // (3,14) is not an edge of the 8x2 grid model, so we use (3,11) which
    // sits in the same column pair.
    let qubits = [HwQubit(0), HwQubit(4), HwQubit(9), HwQubit(13)];
    let edges = [
        EdgeId::new(HwQubit(4), HwQubit(5)),
        EdgeId::new(HwQubit(7), HwQubit(15)),
        EdgeId::new(HwQubit(3), HwQubit(11)),
    ];

    println!("Figure 1a: qubit coherence time T2 (microseconds) per calibration day\n");
    let headers: Vec<String> = std::iter::once("Day".to_string())
        .chain(qubits.iter().map(|q| q.to_string()))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let rows: Vec<Vec<String>> = snapshots
        .iter()
        .map(|c| {
            std::iter::once(c.day.to_string())
                .chain(qubits.iter().map(|&q| format!("{:.1}", c.t2_us(q))))
                .collect()
        })
        .collect();
    println!("{}", format_table(&header_refs, &rows));

    println!("Figure 1b: CNOT gate error rate per calibration day\n");
    let headers: Vec<String> = std::iter::once("Day".to_string())
        .chain(edges.iter().map(|e| format!("CNOT {},{}", e.0, e.1)))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let rows: Vec<Vec<String>> = snapshots
        .iter()
        .map(|c| {
            std::iter::once(c.day.to_string())
                .chain(edges.iter().map(|e| format!("{:.3}", c.cnot_error[e])))
                .collect()
        })
        .collect();
    println!("{}", format_table(&header_refs, &rows));

    // Summary statistics the paper quotes in Section 2.
    let mut t2_min = f64::INFINITY;
    let mut t2_max: f64 = 0.0;
    let mut cnot_min = f64::INFINITY;
    let mut cnot_max: f64 = 0.0;
    let mut ro_min = f64::INFINITY;
    let mut ro_max: f64 = 0.0;
    let mut t2_sum = 0.0;
    let mut cnot_sum = 0.0;
    let mut ro_sum = 0.0;
    for c in &snapshots {
        t2_sum += c.mean_t2_us();
        cnot_sum += c.mean_cnot_error();
        ro_sum += c.mean_readout_error();
        for &t in &c.t2_us {
            t2_min = t2_min.min(t);
            t2_max = t2_max.max(t);
        }
        for &e in c.cnot_error.values() {
            cnot_min = cnot_min.min(e);
            cnot_max = cnot_max.max(e);
        }
        for &e in &c.readout_error {
            ro_min = ro_min.min(e);
            ro_max = ro_max.max(e);
        }
    }
    let n = snapshots.len() as f64;
    println!("Section 2 statistics over {days} days:");
    println!(
        "  mean T2 {:.1} us (paper: ~70 us), spatio-temporal variation {:.1}x (paper: up to 9.2x)",
        t2_sum / n,
        t2_max / t2_min
    );
    println!(
        "  mean CNOT error {:.3} (paper: 0.04), variation {:.1}x (paper: up to 9.0x)",
        cnot_sum / n,
        cnot_max / cnot_min
    );
    println!(
        "  mean readout error {:.3} (paper: 0.07), variation {:.1}x (paper: up to 5.9x)",
        ro_sum / n,
        ro_max / ro_min
    );
}
