//! Figure 8: the BV4 qubit mappings chosen by Qiskit, T-SMT*, R-SMT*
//! (omega = 1) and R-SMT* (omega = 0.5), with the error rates of the
//! hardware resources they use.
//!
//! This figure inspects placements and routed schedules rather than
//! aggregate metrics, so it drives [`Session::compile`] directly instead of
//! rendering a report.

use nisq_core::{CompilerConfig, RouteSelection};
use nisq_exp::{Session, DEFAULT_MACHINE_SEED};
use nisq_ir::{Benchmark, Qubit};
use nisq_machine::{HwQubit, TopologySpec};

fn main() {
    let mut session = Session::new();
    let machine = session.machine(TopologySpec::Ibmq16, DEFAULT_MACHINE_SEED, 0);
    let circuit = Benchmark::Bv4.circuit();

    let configs = [
        ("(a) Qiskit", CompilerConfig::qiskit()),
        (
            "(b) T-SMT*: optimize duration without error data",
            CompilerConfig::t_smt_star(RouteSelection::OneBendPaths),
        ),
        (
            "(c) R-SMT* (w=1): optimize readout reliability",
            CompilerConfig::r_smt_star(1.0),
        ),
        (
            "(d) R-SMT* (w=0.5): optimize CNOT+readout reliability",
            CompilerConfig::r_smt_star(0.5),
        ),
    ];

    println!("Figure 8: BV4 mappings on the day-0 calibration\n");
    println!("Hardware layout (readout error x10^-2 in each cell):");
    let calibration = machine.calibration();
    let grid = machine.topology().as_grid().expect("IBMQ16 is grid-shaped");
    for y in 0..grid.my() {
        let row: Vec<String> = (0..grid.mx())
            .map(|x| {
                let q = grid.at(x, y);
                format!("Q{:<2}({:>4.1})", q.0, calibration.readout_error(q) * 100.0)
            })
            .collect();
        println!("  {}", row.join(" "));
    }
    println!();

    for (label, config) in configs {
        let compiled = session
            .compile(&machine, &config, &circuit)
            .expect("BV4 compiles on IBMQ16");
        let placement = compiled.placement();
        println!("{label}");
        for p in 0..circuit.num_qubits() {
            let hw = placement.hw(Qubit(p));
            println!(
                "  p{p} -> {hw}  (readout error {:.3})",
                calibration.readout_error(hw)
            );
        }
        // Report the hardware CNOTs the program's three CNOTs use.
        let mut cnot_edges = Vec::new();
        for entry in &compiled.schedule().gates {
            if let Some(route) = &entry.route {
                for pair in route.path.windows(2) {
                    cnot_edges.push((pair[0], pair[1]));
                }
            }
        }
        let edge_desc: Vec<String> = cnot_edges
            .iter()
            .map(|&(a, b): &(HwQubit, HwQubit)| {
                format!(
                    "{a}-{b} ({:.3})",
                    calibration.cnot_error(a, b).unwrap_or(f64::NAN)
                )
            })
            .collect();
        println!("  hardware CNOT edges used: {}", edge_desc.join(", "));
        println!(
            "  swaps: {}, duration: {} timeslots, estimated reliability: {:.3}\n",
            compiled.swap_count(),
            compiled.duration_slots(),
            compiled.estimated_reliability()
        );
    }
}
