//! Figure 9: effect of gate durations, routing policy and objective on
//! execution duration. Compares T-SMT (RR, uniform gate times) against
//! T-SMT* (RR), T-SMT* (1BP) and R-SMT* (1BP), all using calibrated gate
//! durations for the final duration report. A compile-only sweep: no
//! simulation trials are requested.

use nisq_bench::{format_table, geomean};
use nisq_core::{CompilerConfig, RouteSelection};
use nisq_exp::{Session, SweepPlan};
use nisq_ir::Benchmark;

fn main() {
    let configs = [
        (
            "T-SMT RR",
            CompilerConfig::t_smt(RouteSelection::RectangleReservation),
        ),
        (
            "T-SMT* RR",
            CompilerConfig::t_smt_star(RouteSelection::RectangleReservation),
        ),
        (
            "T-SMT* 1BP",
            CompilerConfig::t_smt_star(RouteSelection::OneBendPaths),
        ),
        ("R-SMT* 1BP", CompilerConfig::r_smt_star(0.5)),
    ];
    let plan = SweepPlan::new()
        .benchmarks(Benchmark::all())
        .with_configs(configs);
    let report = Session::new().run(&plan).expect("benchmarks fit on IBMQ16");

    let mut rows = Vec::new();
    let mut noise_aware_gain = Vec::new();
    for benchmark in Benchmark::all() {
        let durations: Vec<u32> = configs
            .iter()
            .map(|(label, _)| report.require(benchmark.name(), label, 0).duration_slots)
            .collect();
        let mut cells = vec![benchmark.name().to_string()];
        cells.extend(durations.iter().map(|d| d.to_string()));
        // Gain of the calibration-aware duration objective over T-SMT.
        noise_aware_gain.push(f64::from(durations[0]) / f64::from(durations[1].max(1)));
        rows.push(cells);
    }

    println!("Figure 9: execution duration in timeslots (80 ns each), day-0 calibration\n");
    println!(
        "{}",
        format_table(
            &[
                "Benchmark",
                "T-SMT RR",
                "T-SMT* RR",
                "T-SMT* 1BP",
                "R-SMT* 1BP"
            ],
            &rows
        )
    );
    println!(
        "Geomean duration gain of T-SMT* (RR) over calibration-unaware T-SMT (RR): {:.2}x \
         (paper: up to 1.68x, ~1.6x for noise-aware policies)",
        geomean(&noise_aware_gain)
    );
    println!(
        "The paper also observes RR and 1BP give similar durations for these small benchmarks, \
         and that R-SMT* stays close to the duration-optimized variants."
    );
}
