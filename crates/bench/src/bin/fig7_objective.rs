//! Figure 7: choice of optimization objective. Success rate (a), execution
//! duration (b) and compile time (c) for BV4, HS6 and Toffoli under T-SMT*
//! and R-SMT* with omega in {0, 0.5, 1}, plus a finer omega sweep as the
//! ablation called out in DESIGN.md.
//!
//! One plan covers every table: the main configurations and the ablation's
//! omega grid land in the same report, and the session's compile cache
//! dedups the omegas both axes share.

use nisq_bench::{fmt3, format_table, trials_from_env};
use nisq_core::{CompilerConfig, RouteSelection};
use nisq_exp::{Session, SweepPlan};
use nisq_ir::Benchmark;

fn main() {
    let trials = trials_from_env(8192);
    let main_configs = [
        (
            "T-SMT*",
            CompilerConfig::t_smt_star(RouteSelection::OneBendPaths),
        ),
        ("R-SMT* w=1", CompilerConfig::r_smt_star(1.0)),
        ("R-SMT* w=0", CompilerConfig::r_smt_star(0.0)),
        ("R-SMT* w=0.5", CompilerConfig::r_smt_star(0.5)),
    ];
    let omegas = [0.0, 0.25, 0.5, 0.75, 1.0];

    let mut plan = SweepPlan::new()
        .benchmarks(Benchmark::representative())
        .with_configs(main_configs)
        .with_trials(trials)
        .fixed_sim_seed(7);
    for &omega in &omegas {
        plan = plan.config(format!("w={omega}"), CompilerConfig::r_smt_star(omega));
    }
    let report = Session::new().run(&plan).expect("benchmarks fit on IBMQ16");

    for (title, metric) in [
        ("Figure 7a: success rate", 0usize),
        ("Figure 7b: execution duration (timeslots)", 1),
        ("Figure 7c: compile time (ms)", 2),
    ] {
        let mut rows = Vec::new();
        for benchmark in Benchmark::representative() {
            let mut cells = vec![benchmark.name().to_string()];
            for (label, _) in &main_configs {
                let outcome = report.require(benchmark.name(), label, 0);
                cells.push(match metric {
                    0 => fmt3(outcome.success()),
                    1 => outcome.duration_slots.to_string(),
                    _ => format!("{:.1}", outcome.compile_ms),
                });
            }
            rows.push(cells);
        }
        println!("{title} ({trials} trials, day 0)\n");
        let headers: Vec<&str> = std::iter::once("Benchmark")
            .chain(main_configs.iter().map(|(n, _)| *n))
            .collect();
        println!("{}", format_table(&headers, &rows));
    }

    // Ablation: finer omega sweep on the representative benchmarks.
    println!("Ablation: omega sweep for R-SMT* (success rate)\n");
    let mut rows = Vec::new();
    for benchmark in Benchmark::representative() {
        let mut cells = vec![benchmark.name().to_string()];
        for &omega in &omegas {
            let label = format!("w={omega}");
            cells.push(fmt3(report.require(benchmark.name(), &label, 0).success()));
        }
        rows.push(cells);
    }
    println!(
        "{}",
        format_table(
            &["Benchmark", "w=0", "w=0.25", "w=0.5", "w=0.75", "w=1"],
            &rows
        )
    );
    println!("The paper finds omega near 0.5 gives the best success rates on IBMQ16.");
}
