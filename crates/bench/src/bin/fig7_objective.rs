//! Figure 7: choice of optimization objective. Success rate (a), execution
//! duration (b) and compile time (c) for BV4, HS6 and Toffoli under T-SMT*
//! and R-SMT* with omega in {0, 0.5, 1}, plus a finer omega sweep as the
//! ablation called out in DESIGN.md.

use nisq_bench::{fmt3, format_table, ibmq16_on_day, run_benchmark};
use nisq_core::{CompilerConfig, RouteSelection};
use nisq_ir::Benchmark;

fn main() {
    let machine = ibmq16_on_day(0);
    let trials = std::env::var("NISQ_TRIALS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8192);

    let configs = [
        (
            "T-SMT*".to_string(),
            CompilerConfig::t_smt_star(RouteSelection::OneBendPaths),
        ),
        ("R-SMT* w=1".to_string(), CompilerConfig::r_smt_star(1.0)),
        ("R-SMT* w=0".to_string(), CompilerConfig::r_smt_star(0.0)),
        ("R-SMT* w=0.5".to_string(), CompilerConfig::r_smt_star(0.5)),
    ];

    for (title, metric) in [
        ("Figure 7a: success rate", 0usize),
        ("Figure 7b: execution duration (timeslots)", 1),
        ("Figure 7c: compile time (ms)", 2),
    ] {
        let mut rows = Vec::new();
        for benchmark in Benchmark::representative() {
            let mut cells = vec![benchmark.name().to_string()];
            for (_, config) in &configs {
                let outcome = run_benchmark(&machine, *config, benchmark, trials, 7);
                cells.push(match metric {
                    0 => fmt3(outcome.success_rate),
                    1 => outcome.duration_slots.to_string(),
                    _ => format!("{:.1}", outcome.compile_time.as_secs_f64() * 1000.0),
                });
            }
            rows.push(cells);
        }
        println!("{title} ({trials} trials, day 0)\n");
        let headers: Vec<&str> = std::iter::once("Benchmark")
            .chain(configs.iter().map(|(n, _)| n.as_str()))
            .collect();
        println!("{}", format_table(&headers, &rows));
    }

    // Ablation: finer omega sweep on the representative benchmarks.
    println!("Ablation: omega sweep for R-SMT* (success rate)\n");
    let omegas = [0.0, 0.25, 0.5, 0.75, 1.0];
    let mut rows = Vec::new();
    for benchmark in Benchmark::representative() {
        let mut cells = vec![benchmark.name().to_string()];
        for &omega in &omegas {
            let outcome = run_benchmark(
                &machine,
                CompilerConfig::r_smt_star(omega),
                benchmark,
                trials,
                7,
            );
            cells.push(fmt3(outcome.success_rate));
        }
        rows.push(cells);
    }
    println!(
        "{}",
        format_table(
            &["Benchmark", "w=0", "w=0.25", "w=0.5", "w=0.75", "w=1"],
            &rows
        )
    );
    println!("The paper finds omega near 0.5 gives the best success rates on IBMQ16.");
}
