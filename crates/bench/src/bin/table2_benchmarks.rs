//! Table 2: characteristics of the benchmark programs.
//!
//! The circuit axis of the evaluation's sweep plans, rendered as a table.

use nisq_bench::format_table;
use nisq_exp::SweepPlan;
use nisq_ir::Benchmark;

fn main() {
    println!("Table 2: benchmark characteristics\n");
    let plan = SweepPlan::new().benchmarks(Benchmark::all());
    let rows: Vec<Vec<String>> = plan
        .circuits()
        .iter()
        .map(|spec| {
            let stats = spec.circuit.stats();
            vec![
                spec.name.clone(),
                stats.num_qubits.to_string(),
                stats.gates.to_string(),
                stats.cnots.to_string(),
                stats.depth.to_string(),
                stats.interaction_edges.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &[
                "Name",
                "Qubits",
                "Gates",
                "CNOTs",
                "Depth",
                "CNOT graph edges"
            ],
            &rows
        )
    );
    println!("Gate counts exclude final measurements; SWAPs count as three CNOTs.");
}
