//! Table 2: characteristics of the benchmark programs.

use nisq_bench::format_table;
use nisq_ir::Benchmark;

fn main() {
    println!("Table 2: benchmark characteristics\n");
    let rows: Vec<Vec<String>> = Benchmark::all()
        .iter()
        .map(|b| {
            let stats = b.circuit().stats();
            vec![
                b.name().to_string(),
                stats.num_qubits.to_string(),
                stats.gates.to_string(),
                stats.cnots.to_string(),
                stats.depth.to_string(),
                stats.interaction_edges.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &[
                "Name",
                "Qubits",
                "Gates",
                "CNOTs",
                "Depth",
                "CNOT graph edges"
            ],
            &rows
        )
    );
    println!("Gate counts exclude final measurements; SWAPs count as three CNOTs.");
}
