//! Regenerates `tests/golden/table1_ibmq16.txt`: a bit-exact snapshot of
//! what every Table-1 configuration produces for every benchmark on the
//! default synthetic IBMQ16 machine.
//!
//! The snapshot pins the compiler's observable artifacts — placement,
//! one-way swap count, schedule makespan, physical gate/CNOT counts and the
//! estimated reliability (as raw f64 bits) — so that refactors of the
//! compilation stack can prove they did not change behaviour
//! (`tests/pipeline_equivalence.rs` replays the same compilations and
//! compares against the checked-in file). The checked-in snapshot was
//! recorded from the monolithic compiler *after* the corrected
//! `best_cnot_route` search landed, immediately before the pass-pipeline
//! refactor. Regenerate it **only** when a behaviour change is
//! intentional, and say so in the commit.
//!
//! Usage: `cargo run --release -p nisq-bench --bin golden_snapshot [path]`
//! (default output: `tests/golden/table1_ibmq16.txt`).

use nisq_bench::{golden_snapshot_lines, GOLDEN_DAYS};

fn main() {
    let output = std::env::args()
        .nth(1)
        .unwrap_or_else(|| String::from("tests/golden/table1_ibmq16.txt"));
    let mut text = String::from(
        "# config|benchmark|day|placement|swaps|makespan|physical_gates|hw_cnots|reliability_bits\n",
    );
    for line in golden_snapshot_lines(GOLDEN_DAYS) {
        text.push_str(&line);
        text.push('\n');
    }
    std::fs::write(&output, &text).expect("failed to write golden snapshot");
    println!("wrote {output} ({} lines)", text.lines().count());
}
