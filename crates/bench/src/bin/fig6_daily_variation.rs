//! Figure 6: success rate of T-SMT* and R-SMT* over one week for BV4, HS6
//! and Toffoli, recompiling every day with that day's calibration data.

use nisq_bench::{fmt3, format_table, ibmq16_on_day, run_benchmark};
use nisq_core::{CompilerConfig, RouteSelection};
use nisq_ir::Benchmark;

fn main() {
    let days = 7;
    let trials = std::env::var("NISQ_TRIALS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4096);

    println!("Figure 6: daily success rate over one week ({trials} trials per point)\n");
    let mut rows = Vec::new();
    let mut r_wins = 0usize;
    let mut total = 0usize;
    for day in 0..days {
        let machine = ibmq16_on_day(day);
        let mut cells = vec![format!("day {day}")];
        for benchmark in Benchmark::representative() {
            let t = run_benchmark(
                &machine,
                CompilerConfig::t_smt_star(RouteSelection::OneBendPaths),
                benchmark,
                trials,
                100 + day as u64,
            );
            let r = run_benchmark(
                &machine,
                CompilerConfig::r_smt_star(0.5),
                benchmark,
                trials,
                100 + day as u64,
            );
            if r.success_rate >= t.success_rate {
                r_wins += 1;
            }
            total += 1;
            cells.push(fmt3(t.success_rate));
            cells.push(fmt3(r.success_rate));
        }
        rows.push(cells);
    }

    println!(
        "{}",
        format_table(
            &[
                "Day",
                "BV4 T-SMT*",
                "BV4 R-SMT*",
                "HS6 T-SMT*",
                "HS6 R-SMT*",
                "Toffoli T-SMT*",
                "Toffoli R-SMT*",
            ],
            &rows
        )
    );
    println!(
        "R-SMT* matches or beats T-SMT* on {r_wins}/{total} benchmark-days \
         (paper: R-SMT* is more resilient to daily variation on all three benchmarks)."
    );
}
