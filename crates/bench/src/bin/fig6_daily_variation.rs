//! Figure 6: success rate of T-SMT* and R-SMT* over one week for BV4, HS6
//! and Toffoli, recompiling every day with that day's calibration data.

use nisq_bench::{fmt3, format_table, trials_from_env};
use nisq_core::{CompilerConfig, RouteSelection};
use nisq_exp::{Session, SweepPlan};
use nisq_ir::Benchmark;

fn main() {
    let days = 7;
    let trials = trials_from_env(4096);

    let plan = SweepPlan::new()
        .benchmarks(Benchmark::representative())
        .config(
            "T-SMT*",
            CompilerConfig::t_smt_star(RouteSelection::OneBendPaths),
        )
        .config("R-SMT*", CompilerConfig::r_smt_star(0.5))
        .days(0..days)
        .with_trials(trials)
        .per_day_sim_seed(100);
    let report = Session::new().run(&plan).expect("benchmarks fit on IBMQ16");

    println!("Figure 6: daily success rate over one week ({trials} trials per point)\n");
    let mut rows = Vec::new();
    let mut r_wins = 0usize;
    let mut total = 0usize;
    for day in 0..days {
        let mut cells = vec![format!("day {day}")];
        for benchmark in Benchmark::representative() {
            let t = report.require(benchmark.name(), "T-SMT*", day).success();
            let r = report.require(benchmark.name(), "R-SMT*", day).success();
            if r >= t {
                r_wins += 1;
            }
            total += 1;
            cells.push(fmt3(t));
            cells.push(fmt3(r));
        }
        rows.push(cells);
    }

    println!(
        "{}",
        format_table(
            &[
                "Day",
                "BV4 T-SMT*",
                "BV4 R-SMT*",
                "HS6 T-SMT*",
                "HS6 R-SMT*",
                "Toffoli T-SMT*",
                "Toffoli R-SMT*",
            ],
            &rows
        )
    );
    println!(
        "R-SMT* matches or beats T-SMT* on {r_wins}/{total} benchmark-days \
         (paper: R-SMT* is more resilient to daily variation on all three benchmarks)."
    );
}
