//! Protocol round-trip tests against a live daemon on a loopback TCP
//! socket: framing, error-response schema, control operations, and
//! determinism of reports across reconnects.

use nisq_exp::json::{self, Value};
use nisq_exp::{Report, Session, SweepPlan};
use nisq_serve::{Endpoint, Server, ServerConfig, ServerHandle};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

fn start(config: ServerConfig) -> (ServerHandle, SocketAddr) {
    let server = Server::bind(&Endpoint::Tcp("127.0.0.1:0".to_string()), config).unwrap();
    let addr = server.local_addr().unwrap();
    (server.spawn(), addr)
}

struct Client {
    reader: BufReader<TcpStream>,
    stream: TcpStream,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .unwrap();
        Client {
            reader: BufReader::new(stream.try_clone().unwrap()),
            stream,
        }
    }

    fn send(&mut self, line: &str) {
        self.stream.write_all(line.as_bytes()).unwrap();
        self.stream.write_all(b"\n").unwrap();
        self.stream.flush().unwrap();
    }

    fn recv_line(&mut self) -> String {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).unwrap();
        assert!(n > 0, "server closed the connection unexpectedly");
        line.trim().to_string()
    }

    fn recv(&mut self) -> Value {
        json::parse(&self.recv_line()).unwrap()
    }

    fn roundtrip(&mut self, line: &str) -> Value {
        self.send(line);
        self.recv()
    }
}

fn field<'a>(doc: &'a Value, key: &str) -> &'a Value {
    doc.get(key).unwrap_or_else(|| panic!("missing {key:?}"))
}

fn status(doc: &Value) -> &str {
    field(doc, "status").as_str().unwrap()
}

/// Extracts the embedded report of a `run` response line as a [`Report`].
fn embedded_report(line: &str) -> Report {
    let idx = line.find("\"report\": ").expect("response embeds a report");
    let report_json = &line[idx + "\"report\": ".len()..line.len() - 1];
    Report::from_json(report_json).unwrap()
}

#[test]
fn control_ops_roundtrip_and_shutdown_drains() {
    let (handle, addr) = start(ServerConfig::default());
    let mut client = Client::connect(addr);

    let pong = client.roundtrip(r#"{"op": "ping", "id": "p1"}"#);
    assert_eq!(status(&pong), "ok");
    assert_eq!(field(&pong, "id").as_str(), Some("p1"));

    let stats = client.roundtrip(r#"{"op": "stats"}"#);
    assert_eq!(status(&stats), "ok");
    let body = field(&stats, "stats");
    assert_eq!(field(body, "queue_depth").as_u64(), Some(0));
    assert_eq!(field(body, "accepted").as_u64(), Some(0));

    let bye = client.roundtrip(r#"{"op": "shutdown", "id": "s1"}"#);
    assert_eq!(status(&bye), "ok");
    handle.join().unwrap();
}

#[test]
fn malformed_requests_get_structured_errors_and_the_daemon_survives() {
    let (handle, addr) = start(ServerConfig::default());
    let mut client = Client::connect(addr);

    for (line, code) in [
        ("{nope", "protocol"),
        (r#"{"op": "frobnicate"}"#, "protocol"),
        (r#"{"op": "run", "plan": {}, "surprise": 1}"#, "protocol"),
        (
            r#"{"op": "run", "plan": {"benchmarks": "bv99"}}"#,
            "invalid-plan",
        ),
        (
            r#"{"op": "run", "plan": {"benchmarks": "bv4", "topologies": "grid-0x5"}}"#,
            "invalid-plan",
        ),
    ] {
        let response = client.roundtrip(line);
        assert_eq!(status(&response), "error", "{line}");
        assert_eq!(field(&response, "code").as_str(), Some(code), "{line}");
        assert!(field(&response, "message").as_str().is_some(), "{line}");
    }

    // Budget violations carry the dedicated code.
    let response = client
        .roundtrip(r#"{"op": "run", "id": 7, "plan": {"benchmarks": "bv4", "trials": 999999999}}"#);
    assert_eq!(field(&response, "code").as_str(), Some("budget"));
    assert_eq!(
        field(&response, "id").as_str(),
        Some("7"),
        "integer ids echo as strings"
    );

    // After the barrage the daemon still serves.
    assert_eq!(status(&client.roundtrip(r#"{"op": "ping"}"#)), "ok");
    handle.shutdown();
    handle.join().unwrap();
}

#[test]
fn oversized_request_lines_are_refused() {
    let config = ServerConfig {
        max_request_bytes: 1024,
        ..ServerConfig::default()
    };
    let (handle, addr) = start(config);
    let mut client = Client::connect(addr);
    let huge = format!("{{\"op\": \"ping\", \"id\": \"{}\"}}", "x".repeat(4096));
    let response = client.roundtrip(&huge);
    assert_eq!(status(&response), "error");
    assert_eq!(field(&response, "code").as_str(), Some("protocol"));
    handle.shutdown();
    handle.join().unwrap();
}

#[test]
fn reports_are_deterministic_across_reconnects_and_match_a_direct_session() {
    let (handle, addr) = start(ServerConfig::default());
    let request = r#"{"op": "run", "id": "r1", "plan": {"benchmarks": "bv4",
        "mappers": "qiskit", "trials": 64, "sim_seed": 7}}"#
        .replace('\n', " ");

    let mut first = Client::connect(addr);
    first.send(&request);
    let line = first.recv_line();
    let doc = json::parse(&line).unwrap();
    assert_eq!(status(&doc), "ok");
    assert_eq!(field(&doc, "cells_done").as_u64(), Some(1));
    assert_eq!(field(&doc, "cells_total").as_u64(), Some(1));
    let report_a = embedded_report(&line).canonicalized();
    drop(first);

    let mut second = Client::connect(addr);
    second.send(&request);
    let report_b = embedded_report(&second.recv_line()).canonicalized();

    assert_eq!(report_a, report_b, "same plan + seed must be bit-identical");

    // The daemon's report matches a freshly built local session's, so
    // serving through the daemon changes nothing about the science.
    let plan = SweepPlan::new()
        .benchmark(nisq_ir::Benchmark::Bv4)
        .config("qiskit", nisq_core::CompilerConfig::qiskit())
        .with_trials(64)
        .fixed_sim_seed(7);
    let direct = Session::new().run(&plan).unwrap().canonicalized();
    assert_eq!(report_a, direct);

    handle.shutdown();
    handle.join().unwrap();
}

#[test]
fn noise_specs_run_through_the_daemon_with_per_cell_provenance() {
    let (handle, addr) = start(ServerConfig::default());
    let mut client = Client::connect(addr);

    // The acceptance spec: calibration-scaled depolarizing on CNOTs plus
    // amplitude damping on measures. Every cell of the returned v5 report
    // must carry the spec's name as its noise provenance.
    let request = r#"{"op": "run", "id": "n1", "plan": {"benchmarks": "bv4",
        "mappers": "qiskit", "trials": 64, "sim_seed": 7,
        "noise": {"name": "depol-cnot_ad-measure", "bindings": [
            {"on": "cnot", "rate": {"calibration": 2.0},
             "channel": {"kind": "depolarizing-2q"}},
            {"on": "measure", "rate": 0.05,
             "channel": {"kind": "amplitude-damping"}}]}}}"#
        .replace('\n', " ");
    client.send(&request);
    let line = client.recv_line();
    let doc = json::parse(&line).unwrap();
    assert_eq!(status(&doc), "ok");
    let report = embedded_report(&line);
    assert!(!report.cells.is_empty());
    for cell in &report.cells {
        assert_eq!(cell.noise.as_deref(), Some("depol-cnot_ad-measure"));
    }

    // A malformed binding inside the noise object is an invalid-plan
    // error, and the daemon keeps serving afterwards.
    let bad = client.roundtrip(
        r#"{"op": "run", "id": "n2", "plan": {"benchmarks": "bv4",
            "noise": {"name": "x", "bindings": [{"on": "warp"}]}}}"#
            .replace('\n', " ")
            .as_str(),
    );
    assert_eq!(status(&bad), "error");
    assert_eq!(field(&bad, "code").as_str(), Some("invalid-plan"));
    let pong = client.roundtrip(r#"{"op": "ping", "id": "n3"}"#);
    assert_eq!(status(&pong), "ok");

    handle.shutdown();
    handle.join().unwrap();
}

#[test]
fn pipelined_requests_answer_in_order() {
    let (handle, addr) = start(ServerConfig::default());
    let mut client = Client::connect(addr);
    client.send(r#"{"op": "ping", "id": "a"}"#);
    client.send(r#"{"op": "ping", "id": "b"}"#);
    client.send("");
    client.send(r#"{"op": "ping", "id": "c"}"#);
    for expected in ["a", "b", "c"] {
        let doc = client.recv();
        assert_eq!(field(&doc, "id").as_str(), Some(expected));
    }
    handle.shutdown();
    handle.join().unwrap();
}
