//! `nisq-serve`: a fault-tolerant compile-and-simulate daemon.
//!
//! The daemon wraps one long-lived [`nisq_exp::Session`] behind a
//! line-delimited JSON protocol over TCP or a Unix socket, so repeated
//! sweeps share compile and placement caches across clients. It is built
//! for hostile weather:
//!
//! - a **bounded queue** rejects excess load with `queue-full` and a
//!   `retry_after_ms` hint instead of buffering without limit;
//! - every request runs under a **wall-clock deadline** (queue wait
//!   included) and returns a partial, well-formed report when time runs
//!   out;
//! - requests execute under **panic isolation**: a panicking request is
//!   answered with a structured `panic` error, and the shared session is
//!   rebuilt only if the panic poisoned a cache lock;
//! - SIGINT/SIGTERM trigger a **graceful drain**: admitted work finishes,
//!   new work is refused with `shutting-down`, then the process exits 0.
//!
//! Every error travels as a typed [`ServeError`] with a stable wire code,
//! mirrored by the `code` field of error responses. The `fault-injection`
//! feature (tests only) adds [`FaultPlan`] hooks for panicking or stalling
//! the worker on demand.

#![deny(unsafe_code)]
#![warn(missing_docs)]

mod error;
#[cfg(feature = "fault-injection")]
mod fault;
mod queue;
mod request;
mod response;
mod server;
pub mod signal;

pub use error::ServeError;
#[cfg(feature = "fault-injection")]
pub use fault::FaultPlan;
pub use request::{admit, parse_request, Budgets, Op, Request};
pub use server::{Endpoint, Server, ServerConfig, ServerHandle};
