//! `nisq-serve`: a fault-tolerant compile-and-simulate daemon.
//!
//! The daemon wraps one long-lived [`nisq_exp::Session`] behind a
//! line-delimited JSON protocol over TCP or a Unix socket, so repeated
//! sweeps share compile and placement caches across clients. It is built
//! for hostile weather:
//!
//! - a **bounded fair queue** holds one lane per connection, drained
//!   round-robin, so a flooding client cannot starve a quiet one; excess
//!   load is rejected with `queue-full` and a deterministic
//!   `retry_after_ms` hint (jittered per request id) instead of buffering
//!   without limit;
//! - every request runs under a **wall-clock deadline** (queue wait
//!   included) and returns a partial, well-formed report when time runs
//!   out;
//! - requests execute under **panic isolation**: a panicking request is
//!   answered with a structured `panic` error, and the shared session is
//!   rebuilt only if the panic poisoned a cache lock;
//! - with a `--journal-dir`, a request carrying `"journal": true` and a
//!   `resume_key` streams finished cells to a **crash-safe journal**; a
//!   client re-sending the same request after a daemon crash resumes the
//!   finished prefix bit-identically instead of recomputing it;
//! - SIGINT/SIGTERM trigger a **graceful drain**: admitted work finishes,
//!   new work is refused with `shutting-down`, then the process exits 0;
//! - with `--workers N`, a [`Supervisor`] forks N process-isolated
//!   worker shards on private Unix sockets, routes runs by rendezvous
//!   hash of the plan fingerprint, heartbeats each shard, restarts the
//!   dead after capped jittered backoff, and re-dispatches in-flight
//!   requests to a survivor — with a shared journal directory, the
//!   failover response is canonically bit-identical to an undisturbed
//!   run.
//!
//! Every error travels as a typed [`ServeError`] with a stable wire code,
//! mirrored by the `code` field of error responses. The `fault-injection`
//! feature (tests only) adds [`FaultPlan`] hooks for panicking or stalling
//! the worker on demand.

#![deny(unsafe_code)]
#![warn(missing_docs)]

mod error;
#[cfg(feature = "fault-injection")]
mod fault;
mod queue;
mod request;
mod response;
mod server;
pub mod signal;
mod supervisor;
mod worker;

pub use error::ServeError;
#[cfg(feature = "fault-injection")]
pub use fault::{FaultPlan, ENV_DELAY_BEFORE_RUN_MS, ENV_PANIC_ON_CIRCUIT, ENV_WEDGE_AFTER_PINGS};
pub use request::{
    admit, parse_plan, parse_plan_with_journal, parse_request, Budgets, Op, Request,
};
pub use server::{journal_path, Endpoint, Server, ServerConfig, ServerHandle};
pub use supervisor::{
    restart_backoff, route_worker, Supervisor, SupervisorConfig, SupervisorHandle,
};
pub use worker::WorkerSpec;
