//! Request parsing and admission control.
//!
//! One request is one line of JSON. The envelope carries an operation, an
//! optional client correlation `id`, and — for `run` — a plan object that
//! maps onto [`SweepPlan`] through the same name parsers the CLI uses, so
//! a request and a `nisqc sweep` invocation resolve identically. Parsing
//! is strict: unknown fields are rejected (a typo silently ignored is a
//! plan silently different from the one the client meant).

use crate::error::ServeError;
use nisq_exp::json::{self, Value};
use nisq_exp::{names, CircuitSpec, NoiseSpec, SweepPlan};
use nisq_ir::qasm;

/// One parsed request envelope.
#[derive(Debug)]
pub struct Request {
    /// Client correlation id, echoed verbatim into the response.
    pub id: Option<String>,
    /// Client-supplied stable key naming the request's journal, so a
    /// reconnecting client resumes the same journal after a crash.
    pub resume_key: Option<String>,
    /// The requested operation.
    pub op: Op,
}

/// The operations the protocol supports.
#[derive(Debug)]
pub enum Op {
    /// Execute a sweep plan and stream the report back.
    Run {
        /// The workload.
        plan: Box<SweepPlan>,
        /// Per-request timeout override in milliseconds (clamped to the
        /// server's configured maximum).
        timeout_ms: Option<u64>,
        /// Whether the plan asked for journaled execution
        /// (`"journal": true`); requires a server `--journal-dir` and a
        /// request `resume_key`.
        journal: bool,
    },
    /// Liveness probe.
    Ping,
    /// Aggregate daemon statistics.
    Stats,
    /// Begin graceful shutdown: drain in-flight work, refuse new work.
    Shutdown,
}

fn protocol(message: impl Into<String>) -> ServeError {
    ServeError::Protocol {
        message: message.into(),
    }
}

fn invalid(message: impl Into<String>) -> ServeError {
    ServeError::InvalidPlan {
        message: message.into(),
    }
}

/// Parses one request line.
///
/// # Errors
///
/// [`ServeError::Protocol`] for malformed JSON or a malformed envelope,
/// [`ServeError::InvalidPlan`] for a well-formed envelope carrying a bad
/// plan.
pub fn parse_request(line: &str) -> Result<Request, ServeError> {
    let doc = json::parse(line).map_err(|e| protocol(e.to_string()))?;
    let Value::Object(fields) = &doc else {
        return Err(protocol("request must be a JSON object"));
    };
    for (key, _) in fields {
        if !matches!(
            key.as_str(),
            "op" | "id" | "plan" | "timeout_ms" | "resume_key"
        ) {
            return Err(protocol(format!("unknown request field {key:?}")));
        }
    }
    let id = match doc.get("id") {
        None | Some(Value::Null) => None,
        Some(Value::String(s)) => Some(s.clone()),
        Some(Value::Integer(i)) => Some(i.to_string()),
        Some(_) => return Err(protocol("\"id\" must be a string or integer")),
    };
    let resume_key = match doc.get("resume_key") {
        None | Some(Value::Null) => None,
        Some(Value::String(s)) if !s.is_empty() => Some(s.clone()),
        Some(Value::String(_)) => return Err(protocol("\"resume_key\" must not be empty")),
        Some(_) => return Err(protocol("\"resume_key\" must be a string")),
    };
    let op = match doc.get("op") {
        None => "run",
        Some(v) => v
            .as_str()
            .ok_or_else(|| protocol("\"op\" must be a string"))?,
    };
    let op = match op {
        "ping" => Op::Ping,
        "stats" => Op::Stats,
        "shutdown" => Op::Shutdown,
        "run" => {
            let timeout_ms = match doc.get("timeout_ms") {
                None | Some(Value::Null) => None,
                Some(v) => Some(
                    v.as_u64()
                        .ok_or_else(|| protocol("\"timeout_ms\" must be a non-negative integer"))?,
                ),
            };
            let plan_doc = doc
                .get("plan")
                .ok_or_else(|| protocol("run request is missing \"plan\""))?;
            let (plan, journal) = parse_plan_with_journal(plan_doc)?;
            Op::Run {
                plan: Box::new(plan),
                timeout_ms,
                journal,
            }
        }
        other => return Err(protocol(format!("unknown op {other:?}"))),
    };
    Ok(Request { id, resume_key, op })
}

/// Accepts either a JSON string or an array of scalars, normalizing the
/// array into the comma-separated form the CLI name parsers take.
fn comma_list(value: &Value, what: &str) -> Result<String, ServeError> {
    match value {
        Value::String(s) => Ok(s.clone()),
        Value::Array(items) => {
            let mut parts = Vec::with_capacity(items.len());
            for item in items {
                match item {
                    Value::String(s) => parts.push(s.clone()),
                    Value::Integer(i) => parts.push(i.to_string()),
                    _ => {
                        return Err(invalid(format!(
                            "\"{what}\" array items must be strings or integers"
                        )))
                    }
                }
            }
            Ok(parts.join(","))
        }
        _ => Err(invalid(format!("\"{what}\" must be a string or an array"))),
    }
}

fn parse_expected_bits(text: &str) -> Result<Vec<bool>, ServeError> {
    text.chars()
        .map(|c| match c {
            '0' => Ok(false),
            '1' => Ok(true),
            other => Err(invalid(format!("invalid bit {other:?} in \"expected\""))),
        })
        .collect()
}

fn parse_circuit_spec(doc: &Value) -> Result<CircuitSpec, ServeError> {
    let Value::Object(fields) = doc else {
        return Err(invalid("\"circuits\" items must be objects"));
    };
    for (key, _) in fields {
        if !matches!(key.as_str(), "name" | "qasm" | "expected") {
            return Err(invalid(format!("unknown circuit field {key:?}")));
        }
    }
    let name = doc
        .get("name")
        .and_then(Value::as_str)
        .ok_or_else(|| invalid("circuit is missing a string \"name\""))?;
    let source = doc
        .get("qasm")
        .and_then(Value::as_str)
        .ok_or_else(|| invalid(format!("circuit {name:?} is missing string \"qasm\"")))?;
    let circuit = qasm::parse(source)
        .map_err(|e| invalid(format!("circuit {name:?} has malformed QASM: {e}")))?;
    let mut spec = CircuitSpec::new(name, circuit);
    if let Some(expected) = doc.get("expected") {
        let bits = expected
            .as_str()
            .ok_or_else(|| invalid("\"expected\" must be a string of 0/1 bits"))?;
        spec = spec.with_expected(parse_expected_bits(bits)?);
    }
    Ok(spec)
}

/// Parses the `plan` object of a run request into a [`SweepPlan`].
///
/// # Errors
///
/// [`ServeError::InvalidPlan`] naming the offending field.
pub fn parse_plan(doc: &Value) -> Result<SweepPlan, ServeError> {
    parse_plan_with_journal(doc).map(|(plan, _)| plan)
}

/// [`parse_plan`] plus the plan's `"journal"` flag.
///
/// # Errors
///
/// [`ServeError::InvalidPlan`] naming the offending field.
pub fn parse_plan_with_journal(doc: &Value) -> Result<(SweepPlan, bool), ServeError> {
    let Value::Object(fields) = doc else {
        return Err(invalid("\"plan\" must be a JSON object"));
    };
    for (key, _) in fields {
        if !matches!(
            key.as_str(),
            "benchmarks"
                | "circuits"
                | "mappers"
                | "omega"
                | "days"
                | "topologies"
                | "trials"
                | "machine_seed"
                | "sim_seed"
                | "noise"
                | "journal"
        ) {
            return Err(invalid(format!("unknown plan field {key:?}")));
        }
    }
    let journal = match doc.get("journal") {
        None | Some(Value::Null) | Some(Value::Bool(false)) => false,
        Some(Value::Bool(true)) => true,
        Some(_) => return Err(invalid("\"journal\" must be a boolean")),
    };

    let omega = match doc.get("omega") {
        None => 0.5,
        Some(v) => {
            let omega = v
                .as_f64()
                .ok_or_else(|| invalid("\"omega\" must be a number"))?;
            if !omega.is_finite() || !(0.0..=1.0).contains(&omega) {
                return Err(invalid(format!("\"omega\" must be in [0, 1], got {omega}")));
            }
            omega
        }
    };

    let mut plan = SweepPlan::new();

    if let Some(v) = doc.get("benchmarks") {
        let benchmarks = names::parse_benchmarks(&comma_list(v, "benchmarks")?).map_err(invalid)?;
        plan = plan.benchmarks(benchmarks);
    }
    if let Some(v) = doc.get("circuits") {
        let items = v
            .as_array()
            .ok_or_else(|| invalid("\"circuits\" must be an array"))?;
        for item in items {
            plan = plan.circuit(parse_circuit_spec(item)?);
        }
    }
    if plan.circuits().is_empty() {
        return Err(invalid(
            "plan selects no circuits (give \"benchmarks\" and/or \"circuits\")",
        ));
    }

    let mappers = match doc.get("mappers") {
        None => names::parse_mappers("r-smt-star", omega).map_err(invalid)?,
        Some(v) => names::parse_mappers(&comma_list(v, "mappers")?, omega).map_err(invalid)?,
    };
    plan = plan.with_configs(mappers);

    if let Some(v) = doc.get("days") {
        let days = names::parse_days(&comma_list(v, "days")?).map_err(invalid)?;
        plan = plan.days(days);
    }
    if let Some(v) = doc.get("topologies") {
        let mut specs = Vec::new();
        for name in comma_list(v, "topologies")?.split(',') {
            let spec = names::parse_topology(name.trim()).map_err(invalid)?;
            spec.validate()
                .map_err(|e| invalid(format!("topology {}: {e}", name.trim())))?;
            specs.push(spec);
        }
        plan = plan.topologies(specs);
    }
    if let Some(v) = doc.get("trials") {
        let trials = v
            .as_u64()
            .ok_or_else(|| invalid("\"trials\" must be a non-negative integer"))?;
        let trials =
            u32::try_from(trials).map_err(|_| invalid("\"trials\" exceeds the u32 range"))?;
        plan = plan.with_trials(trials);
    }
    if let Some(v) = doc.get("machine_seed") {
        let seed = v
            .as_u64()
            .ok_or_else(|| invalid("\"machine_seed\" must be a non-negative integer"))?;
        plan = plan.with_machine_seed(seed);
    }
    if let Some(v) = doc.get("sim_seed") {
        let seed = v
            .as_u64()
            .ok_or_else(|| invalid("\"sim_seed\" must be a non-negative integer"))?;
        plan = plan.fixed_sim_seed(seed);
    }
    match doc.get("noise") {
        None | Some(Value::Null) => {}
        // One spec object or an array of them; each spec names itself, and
        // an array becomes a sweep axis (cells multiply accordingly).
        Some(Value::Array(items)) => {
            for item in items {
                let spec = NoiseSpec::from_value(item).map_err(|e| invalid(e.to_string()))?;
                plan = plan.with_noise(spec.name().to_string(), spec);
            }
        }
        Some(v) => {
            let spec = NoiseSpec::from_value(v).map_err(|e| invalid(e.to_string()))?;
            plan = plan.with_noise(spec.name().to_string(), spec);
        }
    }
    Ok((plan, journal))
}

/// The admission budgets a plan must fit inside before it is enqueued.
#[derive(Debug, Clone, Copy)]
pub struct Budgets {
    /// Largest cell count a single request may describe.
    pub max_cells: usize,
    /// Largest trial count per cell.
    pub max_trials: u32,
    /// Largest machine (topology qubit count) a request may target.
    pub max_machine_qubits: usize,
    /// Widest circuit (logical qubits) a request may *simulate* —
    /// state-vector cost is exponential in this, so it is the budget that
    /// actually protects the daemon.
    pub max_sim_qubits: usize,
}

/// Checks `plan` against the admission budgets without building machines
/// or materializing cells (cell count is computed analytically, so an
/// oversized plan is rejected in O(axes), not O(cells)).
///
/// # Errors
///
/// [`ServeError::Budget`] naming the exceeded budget, or
/// [`ServeError::InvalidPlan`] for a plan whose topology is degenerate.
pub fn admit(plan: &SweepPlan, budgets: &Budgets) -> Result<(), ServeError> {
    let budget = |message: String| ServeError::Budget { message };

    if plan.trials() > budgets.max_trials {
        return Err(budget(format!(
            "plan requests {} trials per cell, budget is {}",
            plan.trials(),
            budgets.max_trials
        )));
    }

    let topology_count = match plan.scope() {
        nisq_exp::MachineScope::Topologies(specs) => {
            for spec in specs {
                let qubits = spec
                    .qubit_count()
                    .map_err(|e| invalid(format!("topology {}: {e}", spec.name())))?;
                if qubits > budgets.max_machine_qubits {
                    return Err(budget(format!(
                        "topology {} has {qubits} qubits, budget is {}",
                        spec.name(),
                        budgets.max_machine_qubits
                    )));
                }
            }
            specs.len()
        }
        nisq_exp::MachineScope::GridPerCircuit => {
            for spec in plan.circuits() {
                let grid = SweepPlan::grid_for(&spec.circuit);
                let qubits = grid.qubit_count().unwrap_or(usize::MAX);
                if qubits > budgets.max_machine_qubits {
                    return Err(budget(format!(
                        "circuit {:?} needs a {qubits}-qubit grid, budget is {}",
                        spec.name, budgets.max_machine_qubits
                    )));
                }
            }
            1
        }
    };

    if plan.trials() > 0 {
        for spec in plan.circuits() {
            if spec.expected.is_some() && spec.circuit.num_qubits() > budgets.max_sim_qubits {
                return Err(budget(format!(
                    "circuit {:?} simulates {} qubits, budget is {}",
                    spec.name,
                    spec.circuit.num_qubits(),
                    budgets.max_sim_qubits
                )));
            }
        }
    }

    let cells = topology_count
        .checked_mul(plan.day_axis().len())
        .and_then(|n| n.checked_mul(plan.circuits().len()))
        .and_then(|n| n.checked_mul(plan.configs().len()))
        .and_then(|n| n.checked_mul(plan.noise_axis().len().max(1)))
        .unwrap_or(usize::MAX);
    if cells > budgets.max_cells {
        return Err(budget(format!(
            "plan describes {cells} cells, budget is {}",
            budgets.max_cells
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn budgets() -> Budgets {
        Budgets {
            max_cells: 64,
            max_trials: 1000,
            max_machine_qubits: 64,
            max_sim_qubits: 16,
        }
    }

    #[test]
    fn parses_a_full_run_request() {
        let line = r#"{"op": "run", "id": "r1", "timeout_ms": 500, "plan": {
            "benchmarks": "bv4,hs2", "mappers": ["qiskit", "greedy-e"],
            "days": "0..2", "topologies": "ibmq16", "trials": 32,
            "machine_seed": 7, "sim_seed": 9}}"#
            .replace('\n', " ");
        let request = parse_request(&line).unwrap();
        assert_eq!(request.id.as_deref(), Some("r1"));
        assert_eq!(request.resume_key, None);
        let Op::Run {
            plan,
            timeout_ms,
            journal,
        } = request.op
        else {
            panic!("expected a run op");
        };
        assert_eq!(timeout_ms, Some(500));
        assert!(!journal);
        assert_eq!(plan.cells().len(), 2 * 2 * 2);
        assert_eq!(plan.machine_seed(), 7);
        assert!(plan.cells().iter().all(|c| c.sim_seed == 9));
        admit(&plan, &budgets()).unwrap();
    }

    #[test]
    fn parses_custom_qasm_circuits() {
        let line = r#"{"plan": {"circuits": [{"name": "bell",
            "qasm": "qreg q[2]; creg c[2]; h q[0]; cx q[0], q[1]; measure q[0] -> c[0]; measure q[1] -> c[1];",
            "expected": "00"}], "trials": 8}}"#
            .replace('\n', " ");
        let Op::Run { plan, .. } = parse_request(&line).unwrap().op else {
            panic!("expected a run op");
        };
        assert_eq!(plan.circuits()[0].name, "bell");
        assert_eq!(plan.circuits()[0].expected, Some(vec![false, false]));
        assert_eq!(plan.configs().len(), 1, "mappers default to r-smt-star");
    }

    #[test]
    fn parses_noise_axis_plans() {
        // A single spec object adds one noise point (cells unchanged in
        // count, every cell tagged).
        let line = r#"{"op": "run", "plan": {"benchmarks": "bv4", "trials": 8,
            "noise": {"name": "depol-x2", "bindings": [
                {"on": "cnot", "rate": {"calibration": 2.0},
                 "channel": {"kind": "depolarizing-2q"}}]}}}"#
            .replace('\n', " ");
        let Op::Run { plan, .. } = parse_request(&line).unwrap().op else {
            panic!("expected a run op");
        };
        assert_eq!(plan.noise_axis().len(), 1);
        assert_eq!(plan.noise_axis()[0].0, "depol-x2");
        assert!(plan.cells().iter().all(|c| c.noise == Some(0)));
        admit(&plan, &budgets()).unwrap();

        // An array of specs becomes a sweep axis: cells multiply, and the
        // admission cell count tracks the multiplication.
        let line = r#"{"op": "run", "plan": {"benchmarks": "bv4,hs2", "noise": [
            {"name": "a", "bindings": [{"on": "sq", "rate": 0.01,
                "channel": {"kind": "bit-flip"}}]},
            {"name": "b", "bindings": [{"on": "measure", "rate": 0.05,
                "channel": {"kind": "amplitude-damping"}}]}]}}"#
            .replace('\n', " ");
        let Op::Run { plan, .. } = parse_request(&line).unwrap().op else {
            panic!("expected a run op");
        };
        assert_eq!(plan.cells().len(), 2 * 2);
        admit(&plan, &budgets()).unwrap();
        let tight = Budgets {
            max_cells: 3,
            ..budgets()
        };
        let err = admit(&plan, &tight).unwrap_err();
        assert_eq!(err.code(), "budget", "{err}");
    }

    #[test]
    fn rejects_malformed_envelopes_with_protocol_errors() {
        for line in [
            "not json",
            "[1,2]",
            r#"{"op": "frobnicate"}"#,
            r#"{"op": "run"}"#,
            r#"{"op": "run", "plan": {}, "unknown_field": 1}"#,
            r#"{"op": 7}"#,
            r#"{"id": true, "op": "ping"}"#,
        ] {
            let err = parse_request(line).unwrap_err();
            assert_eq!(err.code(), "protocol", "{line}: {err}");
        }
    }

    #[test]
    fn rejects_bad_plans_with_invalid_plan_errors() {
        for plan in [
            r#"{}"#,
            r#"{"benchmarks": "bv99"}"#,
            r#"{"benchmarks": "bv4", "mappers": "magic"}"#,
            r#"{"benchmarks": "bv4", "days": "9..2"}"#,
            r#"{"benchmarks": "bv4", "days": "0..9999999999"}"#,
            r#"{"benchmarks": "bv4", "topologies": "ring-2"}"#,
            r#"{"benchmarks": "bv4", "topologies": "torus-3x3"}"#,
            r#"{"benchmarks": "bv4", "omega": 3.5}"#,
            r#"{"benchmarks": "bv4", "trials": -5}"#,
            r#"{"benchmarks": "bv4", "tirals": 10}"#,
            r#"{"circuits": [{"name": "bad", "qasm": "qreg q[2]; zap q[0];"}]}"#,
            r#"{"circuits": [{"name": "huge", "qasm": "qreg q[999999];"}]}"#,
            // Noise specs go through the same strict parser the CLI uses:
            // unknown fields, shape/selector mismatches and non-CPTP Kraus
            // sets are all invalid-plan, not protocol, errors.
            r#"{"benchmarks": "bv4", "noise": {"name": "x", "bindings": [
                {"on": "cnot", "rate": 0.1, "channel": {"kind": "depolarizing-2q"}}],
                "extra": 1}}"#,
            r#"{"benchmarks": "bv4", "noise": {"name": "x", "bindings": [
                {"on": "sq", "rate": 0.1, "channel": {"kind": "depolarizing-2q"}}]}}"#,
            r#"{"benchmarks": "bv4", "noise": {"name": "x", "bindings": [
                {"on": "sq", "channel": {"kind": "kraus",
                 "ops": [[[2, 0], [0, 0], [0, 0], [2, 0]]]}}]}}"#,
            r#"{"benchmarks": "bv4", "noise": 7}"#,
        ] {
            let line = format!(r#"{{"op": "run", "plan": {plan}}}"#);
            let err = parse_request(&line).unwrap_err();
            assert_eq!(err.code(), "invalid-plan", "{plan}: {err}");
        }
    }

    #[test]
    fn admission_enforces_every_budget() {
        let plan = |text: &str| -> SweepPlan {
            let line = format!(r#"{{"op": "run", "plan": {text}}}"#);
            match parse_request(&line).unwrap().op {
                Op::Run { plan, .. } => *plan,
                _ => unreachable!(),
            }
        };
        // Too many cells: 12 benchmarks x 6 mappers x 1 day = 72 > 64.
        let err = admit(
            &plan(r#"{"benchmarks": "all", "mappers": "table1"}"#),
            &budgets(),
        )
        .unwrap_err();
        assert_eq!(err.code(), "budget", "{err}");
        // Too many trials.
        let err = admit(
            &plan(r#"{"benchmarks": "bv4", "trials": 5000}"#),
            &budgets(),
        )
        .unwrap_err();
        assert_eq!(err.code(), "budget", "{err}");
        // Machine too large (the check is analytic: no 10000-qubit
        // topology is ever built).
        let err = admit(
            &plan(r#"{"benchmarks": "bv4", "topologies": "grid-100x100"}"#),
            &budgets(),
        )
        .unwrap_err();
        assert_eq!(err.code(), "budget", "{err}");
        // Within budget.
        admit(
            &plan(r#"{"benchmarks": "bv4,hs2", "mappers": "qiskit", "trials": 100}"#),
            &budgets(),
        )
        .unwrap();
    }

    #[test]
    fn journaled_requests_parse_flag_and_resume_key() {
        let line = r#"{"op": "run", "id": "j1", "resume_key": "client-7/nightly",
            "plan": {"benchmarks": "bv4", "trials": 8, "journal": true}}"#
            .replace('\n', " ");
        let request = parse_request(&line).unwrap();
        assert_eq!(request.resume_key.as_deref(), Some("client-7/nightly"));
        let Op::Run { journal, .. } = request.op else {
            panic!("expected a run op");
        };
        assert!(journal);

        // journal: false and omitted are the same thing.
        let line = r#"{"op": "run", "plan": {"benchmarks": "bv4", "journal": false}}"#;
        let Op::Run { journal, .. } = parse_request(line).unwrap().op else {
            panic!("expected a run op");
        };
        assert!(!journal);

        // Malformed journal/resume_key values are typed errors.
        let err = parse_request(r#"{"op": "run", "plan": {"benchmarks": "bv4", "journal": 1}}"#)
            .unwrap_err();
        assert_eq!(err.code(), "invalid-plan");
        for bad in [
            r#"{"op": "run", "resume_key": 7, "plan": {"benchmarks": "bv4"}}"#,
            r#"{"op": "run", "resume_key": "", "plan": {"benchmarks": "bv4"}}"#,
        ] {
            assert_eq!(parse_request(bad).unwrap_err().code(), "protocol", "{bad}");
        }
    }

    #[test]
    fn control_ops_parse() {
        assert!(matches!(
            parse_request(r#"{"op": "ping"}"#).unwrap().op,
            Op::Ping
        ));
        assert!(matches!(
            parse_request(r#"{"op": "stats", "id": 4}"#).unwrap().op,
            Op::Stats
        ));
        assert!(matches!(
            parse_request(r#"{"op": "shutdown"}"#).unwrap().op,
            Op::Shutdown
        ));
    }
}
