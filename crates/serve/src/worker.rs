//! Process lifecycle of one supervised worker shard.
//!
//! A worker is a separate OS process running the ordinary single-session
//! daemon ([`Server`](crate::Server)) on a private Unix socket, so a
//! crash — SIGKILL, OOM, abort — takes out one shard's caches and
//! nothing else. The supervisor talks to each worker over two
//! connections:
//!
//! - a **request connection**, held under a mutex for the whole
//!   request/response exchange. The worker drains its queue with a single
//!   session thread anyway, so serializing here costs no throughput and
//!   makes response matching trivial (the next line *is* the answer);
//! - a **control connection** for heartbeat pings, kept separate so a
//!   long-running sweep never starves the liveness check (the worker's
//!   per-connection reader answers pings inline, off the session thread).
//!
//! Connections are opened lazily and dropped on any I/O error, so a
//! restarted worker is re-dialed transparently on the next use.

use std::io::{self, Read, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

/// How to launch a worker process: the executable, an argument template,
/// and extra environment. The supervisor substitutes each shard's socket
/// path for the literal `"{socket}"` argument, so any binary that can
/// serve a Unix socket — in practice `nisqc serve --unix {socket}` — can
/// be a worker without the serve crate knowing the CLI.
#[derive(Debug, Clone)]
pub struct WorkerSpec {
    /// The worker executable.
    pub exe: PathBuf,
    /// Arguments, with the literal `"{socket}"` replaced by the shard's
    /// socket path at spawn time.
    pub args: Vec<String>,
    /// Extra environment variables set on the worker process (the rest of
    /// the supervisor's environment is inherited).
    pub env: Vec<(String, String)>,
    /// How long a freshly spawned worker gets to bind its socket before
    /// the spawn is declared failed.
    pub spawn_timeout: Duration,
}

/// One supervised shard: the child process, its socket, and the two
/// connections the supervisor holds onto it.
pub(crate) struct WorkerHandle {
    pub(crate) index: usize,
    pub(crate) socket: PathBuf,
    alive: AtomicBool,
    pid: AtomicU64,
    /// Successful respawns after the initial spawn.
    pub(crate) restarts: AtomicU64,
    /// Requests routed to this shard (stickiness is observable here).
    pub(crate) routed: AtomicU64,
    /// Requests currently forwarded and awaiting a response.
    pub(crate) pending: AtomicU64,
    child: Mutex<Option<Child>>,
    request_conn: Mutex<Option<UnixStream>>,
    control_conn: Mutex<Option<UnixStream>>,
}

fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

fn dial(socket: &PathBuf) -> io::Result<UnixStream> {
    let stream = UnixStream::connect(socket)?;
    stream.set_read_timeout(Some(Duration::from_millis(50)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    Ok(stream)
}

impl WorkerHandle {
    pub(crate) fn new(index: usize, socket: PathBuf) -> WorkerHandle {
        WorkerHandle {
            index,
            socket,
            alive: AtomicBool::new(false),
            pid: AtomicU64::new(0),
            restarts: AtomicU64::new(0),
            routed: AtomicU64::new(0),
            pending: AtomicU64::new(0),
            child: Mutex::new(None),
            request_conn: Mutex::new(None),
            control_conn: Mutex::new(None),
        }
    }

    pub(crate) fn alive(&self) -> bool {
        self.alive.load(Ordering::SeqCst)
    }

    pub(crate) fn pid(&self) -> u64 {
        self.pid.load(Ordering::SeqCst)
    }

    /// Spawns the worker process and waits for its socket to accept (the
    /// readiness probe doubles as the initial control connection).
    pub(crate) fn spawn_process(&self, spec: &WorkerSpec) -> io::Result<()> {
        let _ = std::fs::remove_file(&self.socket);
        let socket = self.socket.to_string_lossy().into_owned();
        let args: Vec<String> = spec
            .args
            .iter()
            .map(|a| {
                if a == "{socket}" {
                    socket.clone()
                } else {
                    a.clone()
                }
            })
            .collect();
        let mut command = Command::new(&spec.exe);
        command
            .args(&args)
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::inherit());
        for (key, value) in &spec.env {
            command.env(key, value);
        }
        let child = command.spawn()?;
        self.pid.store(u64::from(child.id()), Ordering::SeqCst);
        *lock(&self.child) = Some(child);

        let deadline = Instant::now() + spec.spawn_timeout;
        loop {
            match dial(&self.socket) {
                Ok(stream) => {
                    *lock(&self.control_conn) = Some(stream);
                    break;
                }
                Err(_) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) => {
                    self.kill_and_reap();
                    return Err(e);
                }
            }
        }
        *lock(&self.request_conn) = None;
        self.alive.store(true, Ordering::SeqCst);
        Ok(())
    }

    /// Marks the shard dead, kills the process if it still runs, reaps
    /// the zombie, and drops both connections. Idempotent; called for
    /// every detected failure *before* any re-dispatch, so two processes
    /// never write one journal concurrently.
    pub(crate) fn kill_and_reap(&self) {
        self.alive.store(false, Ordering::SeqCst);
        *lock(&self.request_conn) = None;
        *lock(&self.control_conn) = None;
        if let Some(mut child) = lock(&self.child).take() {
            let _ = child.kill();
            let _ = child.wait();
        }
        self.pid.store(0, Ordering::SeqCst);
    }

    /// Whether the child process has exited (or was never spawned).
    pub(crate) fn child_exited(&self) -> bool {
        match lock(&self.child).as_mut() {
            Some(child) => !matches!(child.try_wait(), Ok(None)),
            None => true,
        }
    }

    /// Forwards one request line verbatim and returns the worker's
    /// response line. Holds the request connection for the whole
    /// exchange; any failure drops the connection so the next attempt
    /// re-dials.
    pub(crate) fn forward(&self, line: &str, deadline: Instant) -> io::Result<String> {
        let mut guard = lock(&self.request_conn);
        if guard.is_none() {
            *guard = Some(dial(&self.socket)?);
        }
        let stream = guard.as_mut().expect("connection was just dialed");
        let result = exchange(stream, line, deadline);
        if result.is_err() {
            *guard = None;
        }
        result
    }

    /// One heartbeat: sends `ping` on the control connection and waits
    /// for any response line until `deadline`.
    pub(crate) fn ping(&self, deadline: Instant) -> io::Result<()> {
        let mut guard = lock(&self.control_conn);
        if guard.is_none() {
            *guard = Some(dial(&self.socket)?);
        }
        let stream = guard.as_mut().expect("connection was just dialed");
        let result = exchange(stream, "{\"op\": \"ping\"}", deadline);
        if result.is_err() {
            *guard = None;
        }
        result.map(|_| ())
    }

    /// Best-effort graceful shutdown request (the worker drains and
    /// exits); falls back to nothing if the connection is gone.
    pub(crate) fn request_shutdown(&self, deadline: Instant) {
        let mut guard = lock(&self.control_conn);
        if guard.is_none() {
            match dial(&self.socket) {
                Ok(stream) => *guard = Some(stream),
                Err(_) => return,
            }
        }
        let stream = guard.as_mut().expect("connection was just dialed");
        let _ = exchange(stream, "{\"op\": \"shutdown\"}", deadline);
    }

    /// Waits up to `grace` for the child to exit on its own, then kills
    /// and reaps whatever is left.
    pub(crate) fn shutdown_and_reap(&self, grace: Duration) {
        let deadline = Instant::now() + grace;
        while Instant::now() < deadline && !self.child_exited() {
            std::thread::sleep(Duration::from_millis(20));
        }
        self.kill_and_reap();
    }
}

/// Writes one line and reads one line back, polling the stream's short
/// read timeout until `deadline`.
fn exchange(stream: &mut UnixStream, line: &str, deadline: Instant) -> io::Result<String> {
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()?;
    let mut buffer: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "worker closed the connection",
                ))
            }
            Ok(n) => {
                buffer.extend_from_slice(&chunk[..n]);
                if let Some(pos) = buffer.iter().position(|&b| b == b'\n') {
                    return Ok(String::from_utf8_lossy(&buffer[..pos]).into_owned());
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) =>
            {
                if Instant::now() >= deadline {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "worker response deadline expired",
                    ));
                }
            }
            Err(e) => return Err(e),
        }
    }
}
