//! The daemon: listeners, connection threads, the worker, and shutdown.
//!
//! One worker thread owns the shared [`Session`], consuming a bounded
//! queue of per-connection lanes drained round-robin — per-client
//! fairness, and `&mut Session` needs no locking. Each connection gets a
//! reader thread (parses and admits requests) and a writer thread fed
//! through a bounded channel (a slow or dead client can stall only its
//! own writer, never the worker). Requests execute under
//! [`catch_unwind`]; a panicking request is answered with a structured
//! error, the shared caches are checked for lock poisoning, and only a
//! poisoned session is rebuilt — a healthy one keeps its warm caches
//! across the fault. With a `--journal-dir`, journaled requests stream
//! per-cell results to disk as they complete, so a client reconnecting
//! after a daemon crash resumes its finished prefix instead of a cold
//! start.

use crate::error::ServeError;
#[cfg(feature = "fault-injection")]
use crate::fault::FaultPlan;
use crate::queue::{FairQueue, PushError};
use crate::request::{self, Budgets, Op};
use crate::response;
use crate::signal;
use nisq_exp::{fnv64, json, Journal, RunControl, RunOutcome, Session, SweepPlan, TierStats};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener};
use std::os::unix::net::UnixListener;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Where the daemon listens.
#[derive(Debug, Clone)]
pub enum Endpoint {
    /// A TCP address, e.g. `127.0.0.1:7878` (port 0 picks a free port).
    Tcp(String),
    /// A Unix domain socket path (removed and re-created on bind).
    Unix(PathBuf),
}

/// Tunables of a [`Server`]. The defaults suit an interactive deployment;
/// tests shrink them to exercise the rejection paths deterministically.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Requests the queue admits before `queue-full` backpressure.
    pub queue_capacity: usize,
    /// Default and maximum per-request wall-clock budget (queue wait
    /// included). A request's `timeout_ms` can only shrink it.
    pub request_timeout: Duration,
    /// Largest cell count a request may describe.
    pub max_cells: usize,
    /// Largest trial count per cell.
    pub max_trials: u32,
    /// Largest machine (topology qubit count) a request may target.
    pub max_machine_qubits: usize,
    /// Widest circuit a request may simulate.
    pub max_sim_qubits: usize,
    /// Longest request line accepted, in bytes.
    pub max_request_bytes: usize,
    /// Worker threads of the shared session (0 = the session default).
    pub threads: usize,
    /// Directory for per-request sweep journals. `None` (the default)
    /// rejects journaled requests; `Some` enables crash-safe resume keyed
    /// by the request's `resume_key`.
    pub journal_dir: Option<PathBuf>,
    /// Compact a request's journal after a run leaves at least this many
    /// dead records in it (completed intents, superseded duplicates).
    /// 0 disables auto-compaction.
    pub journal_compact_threshold: usize,
    /// Faults to inject into the worker (present only when the
    /// `fault-injection` feature is enabled; release daemons have no such
    /// field).
    #[cfg(feature = "fault-injection")]
    pub fault_plan: Option<FaultPlan>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            queue_capacity: 32,
            request_timeout: Duration::from_secs(30),
            max_cells: 4096,
            max_trials: 65_536,
            max_machine_qubits: 256,
            max_sim_qubits: 24,
            max_request_bytes: 1 << 20,
            threads: 0,
            journal_dir: None,
            journal_compact_threshold: 64,
            #[cfg(feature = "fault-injection")]
            fault_plan: None,
        }
    }
}

impl ServerConfig {
    pub(crate) fn budgets(&self) -> Budgets {
        Budgets {
            max_cells: self.max_cells,
            max_trials: self.max_trials,
            max_machine_qubits: self.max_machine_qubits,
            max_sim_qubits: self.max_sim_qubits,
        }
    }
}

/// One admitted unit of work.
struct Job {
    id: Option<String>,
    plan: SweepPlan,
    /// Journal file for this request, when it asked for one and the
    /// daemon has a journal directory.
    journal: Option<PathBuf>,
    enqueued: Instant,
    deadline: Instant,
    reply: SyncSender<String>,
}

/// Monotonic counters of everything the daemon did.
#[derive(Default)]
struct Counters {
    connections: AtomicU64,
    accepted: AtomicU64,
    completed: AtomicU64,
    partials: AtomicU64,
    timeouts: AtomicU64,
    compile_errors: AtomicU64,
    panics: AtomicU64,
    session_rebuilds: AtomicU64,
    rejected_invalid: AtomicU64,
    rejected_budget: AtomicU64,
    rejected_queue_full: AtomicU64,
    rejected_shutting_down: AtomicU64,
    responses_dropped: AtomicU64,
    journal_runs: AtomicU64,
    journal_corrupt: AtomicU64,
    journal_degraded: AtomicU64,
    journal_compactions: AtomicU64,
    #[cfg(feature = "fault-injection")]
    pings_answered: AtomicU64,
}

/// Cumulative session-side totals, published by the worker after every
/// request so `stats` answers without touching the session.
#[derive(Default, Clone, Copy)]
struct SessionTotals {
    compile_requests: u64,
    compile_hits: u64,
    place_hits: u64,
    place_runs: u64,
    tiers: TierStats,
}

struct Shared {
    queue: FairQueue<Job>,
    counters: Counters,
    session_totals: Mutex<SessionTotals>,
    shutdown: AtomicBool,
    request_timeout: Duration,
    max_request_bytes: usize,
    budgets: Budgets,
    journal_dir: Option<PathBuf>,
    journal_compact_threshold: usize,
    #[cfg(feature = "fault-injection")]
    fault_plan: Option<FaultPlan>,
}

impl Shared {
    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst) || signal::received()
    }
}

/// A bidirectional stream the daemon can split into reader and writer
/// halves — the common face of TCP and Unix sockets.
pub(crate) trait Conn: Read + Write + Send {
    fn split(&self) -> io::Result<Box<dyn Conn>>;
    fn set_timeouts(&self) -> io::Result<()>;
}

impl Conn for std::net::TcpStream {
    fn split(&self) -> io::Result<Box<dyn Conn>> {
        Ok(Box::new(self.try_clone()?))
    }
    fn set_timeouts(&self) -> io::Result<()> {
        self.set_read_timeout(Some(Duration::from_millis(100)))?;
        self.set_write_timeout(Some(Duration::from_secs(2)))
    }
}

impl Conn for std::os::unix::net::UnixStream {
    fn split(&self) -> io::Result<Box<dyn Conn>> {
        Ok(Box::new(self.try_clone()?))
    }
    fn set_timeouts(&self) -> io::Result<()> {
        self.set_read_timeout(Some(Duration::from_millis(100)))?;
        self.set_write_timeout(Some(Duration::from_secs(2)))
    }
}

pub(crate) enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener, PathBuf),
}

impl Listener {
    pub(crate) fn accept(&self) -> io::Result<Box<dyn Conn>> {
        match self {
            Listener::Tcp(l) => l.accept().map(|(s, _)| Box::new(s) as Box<dyn Conn>),
            Listener::Unix(l, _) => l.accept().map(|(s, _)| Box::new(s) as Box<dyn Conn>),
        }
    }
}

/// Binds a non-blocking listener on `endpoint`, returning the bound TCP
/// address when there is one. A Unix endpoint's stale socket file is
/// removed first; the file is removed again when the listener drops.
pub(crate) fn bind_listener(endpoint: &Endpoint) -> io::Result<(Listener, Option<SocketAddr>)> {
    match endpoint {
        Endpoint::Tcp(addr) => {
            let l = TcpListener::bind(addr)?;
            l.set_nonblocking(true)?;
            let addr = l.local_addr()?;
            Ok((Listener::Tcp(l), Some(addr)))
        }
        Endpoint::Unix(path) => {
            let _ = std::fs::remove_file(path);
            let l = UnixListener::bind(path)?;
            l.set_nonblocking(true)?;
            Ok((Listener::Unix(l, path.clone()), None))
        }
    }
}

impl Drop for Listener {
    fn drop(&mut self) {
        if let Listener::Unix(_, path) = self {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// The serve daemon. Bind, then either [`Server::run`] on the current
/// thread (the CLI does this) or [`Server::spawn`] for a joinable handle
/// (tests do this).
pub struct Server {
    listener: Listener,
    local_addr: Option<SocketAddr>,
    shared: Arc<Shared>,
    config: ServerConfig,
}

/// A handle onto a spawned server: its address, a shutdown switch, and a
/// join point.
pub struct ServerHandle {
    thread: JoinHandle<io::Result<()>>,
    shared: Arc<Shared>,
    local_addr: Option<SocketAddr>,
}

impl ServerHandle {
    /// The bound TCP address, if listening on TCP.
    pub fn addr(&self) -> Option<SocketAddr> {
        self.local_addr
    }

    /// Requests graceful shutdown (same path as SIGINT: drain in-flight
    /// work, refuse new work).
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }

    /// Waits for the server to exit.
    ///
    /// # Errors
    ///
    /// Propagates the accept loop's I/O error, or reports a crashed
    /// server thread.
    pub fn join(self) -> io::Result<()> {
        self.thread
            .join()
            .map_err(|_| io::Error::other("server thread panicked"))?
    }
}

impl Server {
    /// Binds the listening socket (without accepting yet).
    ///
    /// # Errors
    ///
    /// Propagates socket creation failures.
    pub fn bind(endpoint: &Endpoint, config: ServerConfig) -> io::Result<Server> {
        let (listener, local_addr) = bind_listener(endpoint)?;
        if let Some(dir) = &config.journal_dir {
            std::fs::create_dir_all(dir)?;
        }
        // Workers supervised across an exec boundary receive their fault
        // plan as environment variables; an explicitly configured plan
        // wins over the environment.
        #[cfg(feature = "fault-injection")]
        let mut config = config;
        #[cfg(feature = "fault-injection")]
        if config.fault_plan.is_none() {
            config.fault_plan = FaultPlan::from_env();
        }
        let shared = Arc::new(Shared {
            queue: FairQueue::new(config.queue_capacity),
            counters: Counters::default(),
            session_totals: Mutex::new(SessionTotals::default()),
            shutdown: AtomicBool::new(false),
            request_timeout: config.request_timeout,
            max_request_bytes: config.max_request_bytes,
            budgets: config.budgets(),
            journal_dir: config.journal_dir.clone(),
            journal_compact_threshold: config.journal_compact_threshold,
            #[cfg(feature = "fault-injection")]
            fault_plan: config.fault_plan.clone(),
        });
        Ok(Server {
            listener,
            local_addr,
            shared,
            config,
        })
    }

    /// The bound TCP address, if listening on TCP (useful after binding
    /// port 0).
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.local_addr
    }

    /// Runs the daemon on the current thread until shutdown (SIGINT, a
    /// `shutdown` request, or a [`ServerHandle::shutdown`]), then drains
    /// the queue and exits.
    ///
    /// # Errors
    ///
    /// Propagates accept-loop I/O failures other than transient ones.
    pub fn run(self) -> io::Result<()> {
        let Server {
            listener,
            shared,
            config,
            ..
        } = self;
        let worker = {
            let shared = shared.clone();
            let threads = config.threads;
            #[cfg(feature = "fault-injection")]
            let fault = config.fault_plan.clone();
            std::thread::spawn(move || {
                worker_loop(
                    &shared,
                    threads,
                    #[cfg(feature = "fault-injection")]
                    fault,
                )
            })
        };
        let mut connections: Vec<JoinHandle<()>> = Vec::new();

        while !shared.shutting_down() {
            match listener.accept() {
                Ok(stream) => {
                    // The connection ordinal doubles as the fairness lane:
                    // every request admitted on this socket shares a lane.
                    let client = shared.counters.connections.fetch_add(1, Ordering::Relaxed);
                    let shared = shared.clone();
                    connections.push(std::thread::spawn(move || {
                        handle_connection(stream, &shared, client)
                    }));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(25));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => {
                    // A broken listener cannot serve anyway: drain and
                    // report.
                    shared.shutdown.store(true, Ordering::SeqCst);
                    shared.queue.close();
                    let _ = worker.join();
                    return Err(e);
                }
            }
            // Reap finished connection threads so a long-lived daemon's
            // registry does not grow without bound.
            connections.retain(|handle| !handle.is_finished());
        }

        // Graceful drain: refuse new work, serve everything admitted,
        // then let every connection flush and exit.
        shared.shutdown.store(true, Ordering::SeqCst);
        shared.queue.close();
        let _ = worker.join();
        for handle in connections {
            let _ = handle.join();
        }
        drop(listener);
        Ok(())
    }

    /// Spawns [`Server::run`] on a background thread.
    pub fn spawn(self) -> ServerHandle {
        let shared = self.shared.clone();
        let local_addr = self.local_addr;
        let thread = std::thread::spawn(move || self.run());
        ServerHandle {
            thread,
            shared,
            local_addr,
        }
    }
}

/// Extracts a printable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn new_session(threads: usize) -> Session {
    if threads > 0 {
        Session::new().with_threads(threads)
    } else {
        Session::new()
    }
}

/// The on-disk journal file for a `resume_key`: named by FNV-1a hash so
/// arbitrary client-supplied keys cannot traverse outside `dir`.
pub fn journal_path(dir: &Path, resume_key: &str) -> PathBuf {
    dir.join(format!("req-{:016x}.journal", fnv64(resume_key.as_bytes())))
}

/// The single worker: owns the session, serves the queue round-robin
/// across client lanes until the queue closes and drains.
fn worker_loop(
    shared: &Shared,
    threads: usize,
    #[cfg(feature = "fault-injection")] fault: Option<FaultPlan>,
) {
    let mut session = new_session(threads);
    let counters = &shared.counters;
    while let Some(job) = shared.queue.pop() {
        let started = Instant::now();
        let queue_ms = started.duration_since(job.enqueued).as_millis() as u64;

        #[cfg(feature = "fault-injection")]
        if let Some(delay) = fault.as_ref().and_then(|f| f.delay_before_run_ms) {
            std::thread::sleep(Duration::from_millis(delay));
        }

        let control = RunControl::unbounded().with_deadline(job.deadline);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            #[cfg(feature = "fault-injection")]
            if let Some(f) = &fault {
                if f.should_panic(job.plan.circuits().iter().map(|c| c.name.as_str())) {
                    panic!("injected fault: panic_on_circuit");
                }
            }
            run_job(
                &mut session,
                &job,
                &control,
                shared.journal_compact_threshold,
            )
        }));

        let line = match outcome {
            Ok(Ok((outcome, effects))) => {
                if job.journal.is_some() {
                    counters.journal_runs.fetch_add(1, Ordering::Relaxed);
                }
                if effects.degraded {
                    counters.journal_degraded.fetch_add(1, Ordering::Relaxed);
                }
                if effects.compacted {
                    counters.journal_compactions.fetch_add(1, Ordering::Relaxed);
                }
                publish_totals(shared, &outcome.report);
                if outcome.completed {
                    counters.completed.fetch_add(1, Ordering::Relaxed);
                } else if outcome.report.cells.is_empty() {
                    counters.timeouts.fetch_add(1, Ordering::Relaxed);
                    let elapsed = job.enqueued.elapsed().as_millis() as u64;
                    let err = ServeError::Timeout {
                        elapsed_ms: elapsed,
                    };
                    let line = response::error_line(job.id.as_deref(), &err);
                    send_reply(shared, &job.reply, line);
                    continue;
                } else {
                    counters.partials.fetch_add(1, Ordering::Relaxed);
                    counters.timeouts.fetch_add(1, Ordering::Relaxed);
                }
                let run_ms = started.elapsed().as_millis() as u64;
                response::run_line(job.id.as_deref(), &outcome, queue_ms, run_ms)
            }
            Ok(Err(err)) => {
                match err.code() {
                    "journal-corrupt" => counters.journal_corrupt.fetch_add(1, Ordering::Relaxed),
                    _ => counters.compile_errors.fetch_add(1, Ordering::Relaxed),
                };
                response::error_line(job.id.as_deref(), &err)
            }
            Err(payload) => {
                counters.panics.fetch_add(1, Ordering::Relaxed);
                // The cache-owner poison check: a panic that unwound
                // through a lock holder leaves the placement cache
                // unusable, so replace the session. A clean unwind keeps
                // the warm caches.
                if session.placement_cache().is_poisoned() {
                    session = new_session(threads);
                    counters.session_rebuilds.fetch_add(1, Ordering::Relaxed);
                }
                let err = ServeError::Panic {
                    message: panic_message(payload.as_ref()),
                };
                response::error_line(job.id.as_deref(), &err)
            }
        };
        send_reply(shared, &job.reply, line);
    }
}

/// What [`run_job`] observed about a job's journal, besides the outcome.
#[derive(Default)]
struct JournalEffects {
    /// The journal ran out of disk mid-sweep and fell back to in-memory
    /// execution.
    degraded: bool,
    /// The journal was auto-compacted after the run.
    compacted: bool,
}

/// Executes one job on the session, journaled when the job carries a
/// journal path. After a journaled run, auto-compacts the file when the
/// dead-record count (completed intents, superseded duplicates) reaches
/// `compact_threshold` — long-lived resume keys would otherwise grow
/// their journals without bound.
///
/// An unusable journal — not-a-journal file, unreadable, unwritable — is
/// a `journal-corrupt` request error, never a daemon fault. Torn or
/// checksum-corrupt *trailing* records are recovered by truncation inside
/// [`Journal::resume`] and do not error.
fn run_job(
    session: &mut Session,
    job: &Job,
    control: &RunControl,
    compact_threshold: usize,
) -> Result<(RunOutcome, JournalEffects), ServeError> {
    match &job.journal {
        None => Ok((
            session.run_controlled(&job.plan, control)?,
            JournalEffects::default(),
        )),
        Some(path) => {
            let mut journal = Journal::resume(path, job.plan.machine_seed(), job.plan.trials())
                .map_err(|e| ServeError::JournalCorrupt {
                    message: e.to_string(),
                })?;
            let outcome = session.run_journaled(&job.plan, control, &mut journal)?;
            let mut effects = JournalEffects {
                degraded: journal.degraded().is_some(),
                compacted: false,
            };
            if !effects.degraded
                && compact_threshold > 0
                && journal.dead_records() >= compact_threshold as u64
            {
                effects.compacted = journal.compact_in_place();
            }
            Ok((outcome, effects))
        }
    }
}

fn publish_totals(shared: &Shared, report: &nisq_exp::Report) {
    let mut totals = shared
        .session_totals
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    totals.compile_requests += report.cache.compile_requests;
    totals.compile_hits += report.cache.compile_hits;
    totals.place_hits += report.cache.place_hits;
    totals.place_runs += report.cache.place_runs;
    totals.tiers.merge(&report.tiers);
}

/// Hands a response line to the connection's writer without ever blocking
/// the worker: a slow consumer's full channel drops the response (counted)
/// rather than stalling the daemon.
fn send_reply(shared: &Shared, reply: &SyncSender<String>, line: String) {
    if reply.try_send(line).is_err() {
        shared
            .counters
            .responses_dropped
            .fetch_add(1, Ordering::Relaxed);
    }
}

/// The per-connection writer: drains the response channel onto the
/// socket. Exits when every sender is gone or the socket dies.
fn write_loop(mut stream: Box<dyn Conn>, responses: &Receiver<String>) {
    while let Ok(line) = responses.recv() {
        if stream.write_all(line.as_bytes()).is_err()
            || stream.write_all(b"\n").is_err()
            || stream.flush().is_err()
        {
            break;
        }
    }
}

/// The per-connection reader: frames lines (bounded), parses, admits, and
/// answers control operations inline.
fn handle_connection(stream: Box<dyn Conn>, shared: &Shared, client: u64) {
    if stream.set_timeouts().is_err() {
        return;
    }
    let Ok(write_half) = stream.split() else {
        return;
    };
    let (reply, responses) = sync_channel::<String>(16);
    let writer = std::thread::spawn(move || write_loop(write_half, &responses));

    read_requests(stream, shared, &reply, client);

    drop(reply);
    let _ = writer.join();
}

fn read_requests(
    mut stream: Box<dyn Conn>,
    shared: &Shared,
    reply: &SyncSender<String>,
    client: u64,
) {
    let mut buffer: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => return,
            Ok(n) => {
                buffer.extend_from_slice(&chunk[..n]);
                while let Some(pos) = buffer.iter().position(|&b| b == b'\n') {
                    let line_bytes: Vec<u8> = buffer.drain(..=pos).collect();
                    let line = String::from_utf8_lossy(&line_bytes[..pos]);
                    let line = line.trim();
                    if line.is_empty() {
                        continue;
                    }
                    handle_line(line, shared, reply, client);
                }
                if buffer.len() > shared.max_request_bytes {
                    shared
                        .counters
                        .rejected_invalid
                        .fetch_add(1, Ordering::Relaxed);
                    let err = ServeError::Protocol {
                        message: format!("request line exceeds {} bytes", shared.max_request_bytes),
                    };
                    let _ = reply.send(response::error_line(None, &err));
                    return;
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut
                    || e.kind() == io::ErrorKind::Interrupted =>
            {
                // Idle poll tick: exit promptly once the daemon drains.
                if shared.shutting_down() && shared.queue.is_empty() {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

fn handle_line(line: &str, shared: &Shared, reply: &SyncSender<String>, client: u64) {
    let counters = &shared.counters;
    let request = match request::parse_request(line) {
        Ok(request) => request,
        Err(err) => {
            counters.rejected_invalid.fetch_add(1, Ordering::Relaxed);
            let _ = reply.send(response::error_line(None, &err));
            return;
        }
    };
    let id = request.id.as_deref();
    match request.op {
        Op::Ping => {
            #[cfg(feature = "fault-injection")]
            if let Some(plan) = &shared.fault_plan {
                let answered = counters.pings_answered.load(Ordering::Relaxed);
                if plan.should_wedge_ping(answered) {
                    // Injected heartbeat wedge: swallow the ping. The
                    // process stays alive and the socket stays open — only
                    // the supervisor's liveness deadline can tell.
                    return;
                }
            }
            #[cfg(feature = "fault-injection")]
            counters.pings_answered.fetch_add(1, Ordering::Relaxed);
            let _ = reply.send(response::ping_line(id));
        }
        Op::Stats => {
            let _ = reply.send(stats_line(id, shared));
        }
        Op::Shutdown => {
            shared.shutdown.store(true, Ordering::SeqCst);
            let _ = reply.send(response::shutdown_line(id));
        }
        Op::Run {
            plan,
            timeout_ms,
            journal,
        } => {
            if shared.shutting_down() {
                counters
                    .rejected_shutting_down
                    .fetch_add(1, Ordering::Relaxed);
                let _ = reply.send(response::error_line(id, &shutting_down_error(id)));
                return;
            }
            if let Err(err) = request::admit(&plan, &shared.budgets) {
                match err.code() {
                    "budget" => counters.rejected_budget.fetch_add(1, Ordering::Relaxed),
                    _ => counters.rejected_invalid.fetch_add(1, Ordering::Relaxed),
                };
                let _ = reply.send(response::error_line(id, &err));
                return;
            }
            let journal = match journal_file(shared, journal, request.resume_key.as_deref()) {
                Ok(path) => path,
                Err(err) => {
                    counters.rejected_invalid.fetch_add(1, Ordering::Relaxed);
                    let _ = reply.send(response::error_line(id, &err));
                    return;
                }
            };
            let timeout = timeout_ms
                .map(Duration::from_millis)
                .map_or(shared.request_timeout, |t| t.min(shared.request_timeout));
            let now = Instant::now();
            let job = Job {
                id: request.id.clone(),
                plan: *plan,
                journal,
                enqueued: now,
                deadline: now + timeout,
                reply: reply.clone(),
            };
            match shared.queue.try_push(client, job) {
                Ok(()) => {
                    counters.accepted.fetch_add(1, Ordering::Relaxed);
                }
                Err(PushError::Full) => {
                    counters.rejected_queue_full.fetch_add(1, Ordering::Relaxed);
                    // Back-off scaled to how much work is already queued,
                    // plus a deterministic per-request jitter so a herd of
                    // rejected clients does not retry in lockstep.
                    let retry_after_ms =
                        100 + 150 * shared.queue.len() as u64 + retry_jitter_ms(id);
                    let _ = reply.send(response::error_line(
                        id,
                        &ServeError::QueueFull { retry_after_ms },
                    ));
                }
                Err(PushError::Closed) => {
                    counters
                        .rejected_shutting_down
                        .fetch_add(1, Ordering::Relaxed);
                    let _ = reply.send(response::error_line(id, &shutting_down_error(id)));
                }
            }
        }
    }
}

/// Resolves a run request's journal flag to an on-disk path, or rejects
/// the combination: journaling needs both a client `resume_key` (the
/// stable identity that survives reconnects) and a daemon `--journal-dir`.
fn journal_file(
    shared: &Shared,
    journal: bool,
    resume_key: Option<&str>,
) -> Result<Option<PathBuf>, ServeError> {
    if !journal {
        return Ok(None);
    }
    let Some(dir) = &shared.journal_dir else {
        return Err(ServeError::InvalidPlan {
            message: "journaled run refused: daemon started without --journal-dir".to_string(),
        });
    };
    let Some(key) = resume_key else {
        return Err(ServeError::InvalidPlan {
            message: "journaled run requires a resume_key in the request envelope".to_string(),
        });
    };
    Ok(Some(journal_path(dir, key)))
}

/// Deterministic bounded jitter (0..100 ms) for `retry_after_ms`, derived
/// from the request id so tests can predict it and id-less requests get
/// none.
pub(crate) fn retry_jitter_ms(id: Option<&str>) -> u64 {
    id.map_or(0, |id| fnv64(id.as_bytes()) % 100)
}

/// A `shutting-down` rejection with the same deterministic per-request
/// jitter as queue-full back-off: a herd of clients bounced by a draining
/// daemon should not hammer its replacement in lockstep.
pub(crate) fn shutting_down_error(id: Option<&str>) -> ServeError {
    ServeError::ShuttingDown {
        retry_after_ms: 500 + retry_jitter_ms(id),
    }
}

/// Formats the aggregate stats response.
fn stats_line(id: Option<&str>, shared: &Shared) -> String {
    let c = &shared.counters;
    let totals = *shared
        .session_totals
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    let get = |a: &AtomicU64| a.load(Ordering::Relaxed);
    let tiers = totals.tiers;
    // Per-client lane depths as a JSON object keyed by connection ordinal.
    let queue_depths = {
        let entries: Vec<String> = shared
            .queue
            .depths()
            .iter()
            .map(|(client, depth)| format!("\"{client}\": {depth}"))
            .collect();
        format!("{{{}}}", entries.join(", "))
    };
    format!(
        "{{\"id\": {}, \"status\": \"ok\", \"op\": \"stats\", \"stats\": {{\
         \"queue_depth\": {}, \"queue_depths\": {}, \"connections\": {}, \"accepted\": {}, \"completed\": {}, \
         \"partials\": {}, \"timeouts\": {}, \"compile_errors\": {}, \"panics\": {}, \
         \"session_rebuilds\": {}, \"responses_dropped\": {}, \
         \"journal\": {{\"runs\": {}, \"corrupt\": {}, \"degraded\": {}, \"compactions\": {}}}, \
         \"rejected\": {{\"invalid\": {}, \"budget\": {}, \"queue_full\": {}, \"shutting_down\": {}}}, \
         \"session\": {{\"compile_requests\": {}, \"compile_hits\": {}, \"place_hits\": {}, \"place_runs\": {}}}, \
         \"tiers\": {{\"error_free\": {}, \"pauli_prop\": {}, \"checkpointed\": {}, \"full_replay\": {}, \
         \"memo_hits\": {}, \"memo_misses\": {}}}}}}}",
        match id {
            Some(id) => json::write_str(id),
            None => "null".to_string(),
        },
        shared.queue.len(),
        queue_depths,
        get(&c.connections),
        get(&c.accepted),
        get(&c.completed),
        get(&c.partials),
        get(&c.timeouts),
        get(&c.compile_errors),
        get(&c.panics),
        get(&c.session_rebuilds),
        get(&c.responses_dropped),
        get(&c.journal_runs),
        get(&c.journal_corrupt),
        get(&c.journal_degraded),
        get(&c.journal_compactions),
        get(&c.rejected_invalid),
        get(&c.rejected_budget),
        get(&c.rejected_queue_full),
        get(&c.rejected_shutting_down),
        totals.compile_requests,
        totals.compile_hits,
        totals.place_hits,
        totals.place_runs,
        tiers.error_free,
        tiers.pauli_prop,
        tiers.checkpointed,
        tiers.full_replay,
        tiers.memo_hits,
        tiers.memo_misses,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_shared() -> Shared {
        Shared {
            queue: FairQueue::new(4),
            counters: Counters::default(),
            session_totals: Mutex::new(SessionTotals::default()),
            shutdown: AtomicBool::new(false),
            request_timeout: Duration::from_secs(1),
            max_request_bytes: 1024,
            budgets: Budgets {
                max_cells: 16,
                max_trials: 64,
                max_machine_qubits: 16,
                max_sim_qubits: 8,
            },
            journal_dir: None,
            journal_compact_threshold: 0,
            #[cfg(feature = "fault-injection")]
            fault_plan: None,
        }
    }

    #[test]
    fn stats_line_is_valid_json() {
        let shared = test_shared();
        shared.counters.accepted.store(3, Ordering::Relaxed);
        shared.counters.journal_runs.store(2, Ordering::Relaxed);
        let doc = json::parse(&stats_line(Some("s"), &shared)).unwrap();
        assert_eq!(doc.get("status").unwrap().as_str(), Some("ok"));
        let stats = doc.get("stats").unwrap();
        assert_eq!(stats.get("accepted").unwrap().as_u64(), Some(3));
        assert_eq!(stats.get("queue_depth").unwrap().as_u64(), Some(0));
        assert!(stats.get("queue_depths").is_some());
        let journal = stats.get("journal").unwrap();
        assert_eq!(journal.get("runs").unwrap().as_u64(), Some(2));
        assert_eq!(journal.get("corrupt").unwrap().as_u64(), Some(0));
        assert!(stats
            .get("session")
            .unwrap()
            .get("compile_requests")
            .is_some());
        assert!(stats.get("tiers").unwrap().get("error_free").is_some());
    }

    #[test]
    fn journal_flag_needs_both_dir_and_key() {
        let without_dir = test_shared();
        assert_eq!(journal_file(&without_dir, false, None), Ok(None));
        assert!(matches!(
            journal_file(&without_dir, true, Some("k")),
            Err(ServeError::InvalidPlan { .. })
        ));
        let with_dir = Shared {
            journal_dir: Some(PathBuf::from("/tmp/journals")),
            ..test_shared()
        };
        assert!(matches!(
            journal_file(&with_dir, true, None),
            Err(ServeError::InvalidPlan { .. })
        ));
        let path = journal_file(&with_dir, true, Some("client-7/exp")).unwrap();
        let path = path.unwrap();
        assert_eq!(path.parent(), Some(Path::new("/tmp/journals")));
        let name = path.file_name().unwrap().to_str().unwrap();
        // Content-addressed: no trace of the raw key (which may contain
        // separators) in the filename.
        assert!(name.starts_with("req-") && name.ends_with(".journal"));
        assert_eq!(
            path,
            journal_file(&with_dir, true, Some("client-7/exp"))
                .unwrap()
                .unwrap()
        );
    }

    #[test]
    fn retry_jitter_is_deterministic_and_bounded() {
        assert_eq!(retry_jitter_ms(None), 0);
        let a = retry_jitter_ms(Some("req-1"));
        assert_eq!(a, retry_jitter_ms(Some("req-1")));
        assert!(a < 100);
        assert!(retry_jitter_ms(Some("req-2")) < 100);
    }

    #[test]
    fn panic_messages_survive_extraction() {
        let payload: Box<dyn std::any::Any + Send> = Box::new("boom");
        assert_eq!(panic_message(payload.as_ref()), "boom");
        let payload: Box<dyn std::any::Any + Send> = Box::new(String::from("kaboom"));
        assert_eq!(panic_message(payload.as_ref()), "kaboom");
        let payload: Box<dyn std::any::Any + Send> = Box::new(17u32);
        assert_eq!(panic_message(payload.as_ref()), "non-string panic payload");
    }
}
