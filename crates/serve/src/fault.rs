//! Injectable faults for the robustness test suite.
//!
//! Compiled only under the `fault-injection` feature: a [`FaultPlan`]
//! installed into a [`ServerConfig`](crate::ServerConfig) makes the worker
//! misbehave on demand — panic mid-request, or stall long enough to blow
//! any deadline — so the suite can assert the daemon survives exactly the
//! failures the isolation machinery exists for. Release builds carry no
//! hooks.

/// A set of faults the worker injects into matching requests.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Panic (mid-worker, after admission) when a run's plan contains a
    /// circuit with this name.
    pub panic_on_circuit: Option<String>,
    /// Sleep this long before executing every run request — long enough a
    /// delay turns any deadline into a timeout deterministically.
    pub delay_before_run_ms: Option<u64>,
}

impl FaultPlan {
    /// A plan injecting no faults.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Whether `names` contains the panic-trigger circuit.
    pub fn should_panic<'a>(&self, mut names: impl Iterator<Item = &'a str>) -> bool {
        match &self.panic_on_circuit {
            Some(trigger) => names.any(|n| n == trigger),
            None => false,
        }
    }
}
