//! Injectable faults for the robustness test suite.
//!
//! Compiled only under the `fault-injection` feature: a [`FaultPlan`]
//! installed into a [`ServerConfig`](crate::ServerConfig) makes the worker
//! misbehave on demand — panic mid-request, stall long enough to blow
//! any deadline, or wedge its heartbeat — so the suite can assert the
//! daemon survives exactly the failures the isolation machinery exists
//! for. Because supervised workers are separate *processes*, a plan can
//! also be carried across the exec boundary as environment variables
//! ([`FaultPlan::from_env`]). Release builds carry no hooks.

/// Environment variable naming the panic-trigger circuit.
pub const ENV_PANIC_ON_CIRCUIT: &str = "NISQ_SERVE_FAULT_PANIC_ON_CIRCUIT";
/// Environment variable holding the pre-run stall in milliseconds.
pub const ENV_DELAY_BEFORE_RUN_MS: &str = "NISQ_SERVE_FAULT_DELAY_MS";
/// Environment variable holding the wedge-after-pings count.
pub const ENV_WEDGE_AFTER_PINGS: &str = "NISQ_SERVE_FAULT_WEDGE_AFTER_PINGS";

/// A set of faults the worker injects into matching requests.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Panic (mid-worker, after admission) when a run's plan contains a
    /// circuit with this name.
    pub panic_on_circuit: Option<String>,
    /// Sleep this long before executing every run request — long enough a
    /// delay turns any deadline into a timeout deterministically.
    pub delay_before_run_ms: Option<u64>,
    /// Stop answering `ping` after this many were answered — the daemon
    /// looks alive (the process runs, the socket accepts) but its
    /// heartbeat is wedged, which is exactly the failure the supervisor's
    /// liveness deadline exists to catch.
    pub wedge_after_pings: Option<u64>,
}

impl FaultPlan {
    /// A plan injecting no faults.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Reads a plan from the process environment (the `NISQ_SERVE_FAULT_*`
    /// variables), returning `None` when no fault variable is set. This is
    /// how the test suite reaches into supervised worker processes: the
    /// supervisor passes the variables through `worker_env`.
    pub fn from_env() -> Option<Self> {
        let plan = FaultPlan {
            panic_on_circuit: std::env::var(ENV_PANIC_ON_CIRCUIT).ok(),
            delay_before_run_ms: std::env::var(ENV_DELAY_BEFORE_RUN_MS)
                .ok()
                .and_then(|v| v.parse().ok()),
            wedge_after_pings: std::env::var(ENV_WEDGE_AFTER_PINGS)
                .ok()
                .and_then(|v| v.parse().ok()),
        };
        let armed = plan.panic_on_circuit.is_some()
            || plan.delay_before_run_ms.is_some()
            || plan.wedge_after_pings.is_some();
        armed.then_some(plan)
    }

    /// Whether `names` contains the panic-trigger circuit.
    pub fn should_panic<'a>(&self, mut names: impl Iterator<Item = &'a str>) -> bool {
        match &self.panic_on_circuit {
            Some(trigger) => names.any(|n| n == trigger),
            None => false,
        }
    }

    /// Whether the `answered + 1`-th ping should be swallowed.
    pub fn should_wedge_ping(&self, answered: u64) -> bool {
        match self.wedge_after_pings {
            Some(limit) => answered >= limit,
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wedge_threshold_counts_answered_pings() {
        let plan = FaultPlan {
            wedge_after_pings: Some(2),
            ..FaultPlan::none()
        };
        assert!(!plan.should_wedge_ping(0));
        assert!(!plan.should_wedge_ping(1));
        assert!(plan.should_wedge_ping(2));
        assert!(plan.should_wedge_ping(3));
        assert!(!FaultPlan::none().should_wedge_ping(99));
    }
}
