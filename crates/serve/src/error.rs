//! The request-level error taxonomy.
//!
//! Every way a request can fail maps to exactly one [`ServeError`]
//! variant, and every variant has a stable wire `code` clients can switch
//! on. The daemon never answers a request with anything other than a
//! report or one of these — process death is not part of the taxonomy.

use std::error::Error;
use std::fmt;

/// A structured request failure, serialized onto the wire as
/// `{"status": "error", "code": ..., "message": ...}`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The request line was not valid JSON, exceeded the size limit, or
    /// did not have the shape of a request envelope.
    Protocol {
        /// What was wrong with the framing or envelope.
        message: String,
    },
    /// The envelope was well-formed but the plan it carries is not: an
    /// unknown benchmark or mapper name, malformed QASM, a degenerate
    /// topology, an unknown field.
    InvalidPlan {
        /// What was wrong with the plan.
        message: String,
    },
    /// The plan is valid but exceeds an admission budget (cells, trials,
    /// machine size, simulated-circuit width).
    Budget {
        /// Which budget was exceeded and by how much.
        message: String,
    },
    /// The work queue is at capacity; the request was not enqueued.
    QueueFull {
        /// Suggested client back-off before retrying, in milliseconds.
        retry_after_ms: u64,
    },
    /// The request's wall-clock deadline expired before any cell finished
    /// (a deadline that expires mid-run yields a `partial` response
    /// instead, carrying the cells that did finish).
    Timeout {
        /// Wall-clock time the request spent (queueing included), in
        /// milliseconds.
        elapsed_ms: u64,
    },
    /// Compilation or machine construction failed for a plan cell.
    Compile {
        /// The underlying compile diagnostic.
        message: String,
    },
    /// The request panicked inside the worker. The daemon caught it,
    /// checked the shared caches for poisoning, and stayed up.
    Panic {
        /// The panic payload, when it was a string.
        message: String,
    },
    /// The request's journal could not be opened or recovered: the file
    /// at its `resume_key` path exists but is not a sweep journal, or
    /// journal I/O failed outright. (Torn or checksum-corrupt *trailing*
    /// records are not errors — recovery truncates them and resumes.)
    JournalCorrupt {
        /// What went wrong with the journal.
        message: String,
    },
    /// The worker process holding the request died (SIGKILL, OOM, abort)
    /// and re-dispatch to a surviving worker was not possible or also
    /// failed. Retryable: journaled work a dead worker completed replays
    /// from its journal on the next attempt.
    WorkerLost {
        /// What happened to the worker.
        message: String,
        /// Suggested client back-off before retrying, in milliseconds.
        retry_after_ms: u64,
    },
    /// The daemon is draining for shutdown and refuses new work.
    ShuttingDown {
        /// Suggested client back-off before retrying (against a restarted
        /// daemon), in milliseconds.
        retry_after_ms: u64,
    },
}

impl ServeError {
    /// The stable wire code of this error.
    pub fn code(&self) -> &'static str {
        match self {
            ServeError::Protocol { .. } => "protocol",
            ServeError::InvalidPlan { .. } => "invalid-plan",
            ServeError::Budget { .. } => "budget",
            ServeError::QueueFull { .. } => "queue-full",
            ServeError::Timeout { .. } => "timeout",
            ServeError::Compile { .. } => "compile",
            ServeError::Panic { .. } => "panic",
            ServeError::JournalCorrupt { .. } => "journal-corrupt",
            ServeError::WorkerLost { .. } => "worker-lost",
            ServeError::ShuttingDown { .. } => "shutting-down",
        }
    }

    /// The retry hint this error carries, when it is retryable.
    pub fn retry_after_ms(&self) -> Option<u64> {
        match self {
            ServeError::QueueFull { retry_after_ms }
            | ServeError::WorkerLost { retry_after_ms, .. }
            | ServeError::ShuttingDown { retry_after_ms } => Some(*retry_after_ms),
            _ => None,
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Protocol { message } => write!(f, "protocol error: {message}"),
            ServeError::InvalidPlan { message } => write!(f, "invalid plan: {message}"),
            ServeError::Budget { message } => write!(f, "budget exceeded: {message}"),
            ServeError::QueueFull { retry_after_ms } => {
                write!(f, "queue full, retry after {retry_after_ms} ms")
            }
            ServeError::Timeout { elapsed_ms } => {
                write!(f, "deadline expired after {elapsed_ms} ms")
            }
            ServeError::Compile { message } => write!(f, "compile failed: {message}"),
            ServeError::Panic { message } => write!(f, "request panicked: {message}"),
            ServeError::JournalCorrupt { message } => write!(f, "journal unusable: {message}"),
            ServeError::WorkerLost {
                message,
                retry_after_ms,
            } => {
                write!(
                    f,
                    "worker lost ({message}), retry after {retry_after_ms} ms"
                )
            }
            ServeError::ShuttingDown { retry_after_ms } => {
                write!(
                    f,
                    "daemon is shutting down, retry after {retry_after_ms} ms"
                )
            }
        }
    }
}

impl Error for ServeError {}

impl From<nisq_core::CompileError> for ServeError {
    fn from(err: nisq_core::CompileError) -> Self {
        ServeError::Compile {
            message: err.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_variant_has_a_distinct_code() {
        let variants = [
            ServeError::Protocol {
                message: String::new(),
            },
            ServeError::InvalidPlan {
                message: String::new(),
            },
            ServeError::Budget {
                message: String::new(),
            },
            ServeError::QueueFull { retry_after_ms: 1 },
            ServeError::Timeout { elapsed_ms: 1 },
            ServeError::Compile {
                message: String::new(),
            },
            ServeError::Panic {
                message: String::new(),
            },
            ServeError::JournalCorrupt {
                message: String::new(),
            },
            ServeError::WorkerLost {
                message: String::new(),
                retry_after_ms: 1,
            },
            ServeError::ShuttingDown { retry_after_ms: 1 },
        ];
        let codes: Vec<&str> = variants.iter().map(ServeError::code).collect();
        let mut unique = codes.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), codes.len());
    }

    #[test]
    fn retryable_variants_carry_their_hint() {
        assert_eq!(
            ServeError::QueueFull { retry_after_ms: 9 }.retry_after_ms(),
            Some(9)
        );
        assert_eq!(
            ServeError::WorkerLost {
                message: "killed".to_string(),
                retry_after_ms: 11,
            }
            .retry_after_ms(),
            Some(11)
        );
        assert_eq!(
            ServeError::ShuttingDown { retry_after_ms: 13 }.retry_after_ms(),
            Some(13)
        );
        assert_eq!(ServeError::Timeout { elapsed_ms: 5 }.retry_after_ms(), None);
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ServeError>();
    }
}
