//! Response framing: one JSON object per line.
//!
//! Every response echoes the request's `id` (or `null`) and carries a
//! `status` of `ok`, `partial` or `error`. Reports are embedded as the
//! same document `nisqc sweep` emits, so existing report tooling parses
//! the `report` field unchanged.

use crate::error::ServeError;
use nisq_exp::json;
use nisq_exp::RunOutcome;

fn id_json(id: Option<&str>) -> String {
    match id {
        Some(id) => json::write_str(id),
        None => "null".to_string(),
    }
}

/// The response to a failed request. Retryable errors (`queue-full`,
/// `worker-lost`, `shutting-down`) carry their back-off hint as a
/// `retry_after_ms` field.
pub fn error_line(id: Option<&str>, err: &ServeError) -> String {
    let mut extra = String::new();
    if let Some(retry_after_ms) = err.retry_after_ms() {
        extra = format!(", \"retry_after_ms\": {retry_after_ms}");
    }
    format!(
        "{{\"id\": {}, \"status\": \"error\", \"code\": {}, \"message\": {}{extra}}}",
        id_json(id),
        json::write_str(err.code()),
        json::write_str(&err.to_string()),
    )
}

/// The response to a completed (or deadline-truncated) run. A truncated
/// run reports `status: "partial"` with `code: "timeout"` and the records
/// of every cell that finished.
pub fn run_line(id: Option<&str>, outcome: &RunOutcome, queue_ms: u64, run_ms: u64) -> String {
    let status = if outcome.completed { "ok" } else { "partial" };
    let code = if outcome.completed {
        String::new()
    } else {
        ", \"code\": \"timeout\"".to_string()
    };
    format!(
        "{{\"id\": {}, \"status\": \"{status}\"{code}, \"cells_done\": {}, \"cells_total\": {}, \
         \"queue_ms\": {queue_ms}, \"run_ms\": {run_ms}, \"report\": {}}}",
        id_json(id),
        outcome.report.cells.len(),
        outcome.cells_total,
        outcome.report.to_json_line(),
    )
}

/// The response to a `ping`.
pub fn ping_line(id: Option<&str>) -> String {
    format!(
        "{{\"id\": {}, \"status\": \"ok\", \"op\": \"ping\"}}",
        id_json(id)
    )
}

/// The response to an accepted `shutdown`.
pub fn shutdown_line(id: Option<&str>) -> String {
    format!(
        "{{\"id\": {}, \"status\": \"ok\", \"op\": \"shutdown\"}}",
        id_json(id)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_lines_are_single_line_json_with_code() {
        let line = error_line(
            Some("x"),
            &ServeError::QueueFull {
                retry_after_ms: 250,
            },
        );
        assert!(!line.contains('\n'));
        let doc = json::parse(&line).unwrap();
        assert_eq!(doc.get("id").unwrap().as_str(), Some("x"));
        assert_eq!(doc.get("status").unwrap().as_str(), Some("error"));
        assert_eq!(doc.get("code").unwrap().as_str(), Some("queue-full"));
        assert_eq!(doc.get("retry_after_ms").unwrap().as_u64(), Some(250));
        assert!(doc.get("message").unwrap().as_str().is_some());
    }

    #[test]
    fn worker_lost_and_shutting_down_lines_carry_retry_hints() {
        let line = error_line(
            Some("x"),
            &ServeError::WorkerLost {
                message: "worker 2 died".to_string(),
                retry_after_ms: 321,
            },
        );
        let doc = json::parse(&line).unwrap();
        assert_eq!(doc.get("code").unwrap().as_str(), Some("worker-lost"));
        assert_eq!(doc.get("retry_after_ms").unwrap().as_u64(), Some(321));

        let line = error_line(None, &ServeError::ShuttingDown { retry_after_ms: 77 });
        let doc = json::parse(&line).unwrap();
        assert_eq!(doc.get("code").unwrap().as_str(), Some("shutting-down"));
        assert_eq!(doc.get("retry_after_ms").unwrap().as_u64(), Some(77));
    }

    #[test]
    fn error_line_escapes_hostile_ids_and_messages() {
        let line = error_line(
            Some("line\nbreak\"quote"),
            &ServeError::InvalidPlan {
                message: "bad \"name\"\nwith newline".to_string(),
            },
        );
        assert!(!line.contains('\n'));
        let doc = json::parse(&line).unwrap();
        assert_eq!(doc.get("id").unwrap().as_str(), Some("line\nbreak\"quote"));
    }

    #[test]
    fn ping_echoes_null_id() {
        let doc = json::parse(&ping_line(None)).unwrap();
        assert_eq!(doc.get("id"), Some(&json::Value::Null));
        assert_eq!(doc.get("status").unwrap().as_str(), Some("ok"));
    }
}
