//! The bounded per-client fair work queue between connection readers and
//! the worker.
//!
//! Items land in per-client lanes (one per connection) and are drained
//! **round-robin across lanes**, so one chatty client queueing many
//! requests cannot starve a quiet one: the quiet client's single request
//! is at the front of its own lane and is served within one rotation.
//! Capacity bounds each lane independently — the backpressure a flooder
//! sees (`queue-full`) never blocks admission for other clients.
//!
//! Admission is non-blocking (`try_push` fails fast when full),
//! consumption blocks, and closing the queue lets the worker drain what
//! was already admitted before exiting — the graceful-shutdown contract.

use std::collections::{BTreeMap, VecDeque};
use std::sync::{Condvar, Mutex, PoisonError};

/// Why a push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The client's lane is at capacity.
    Full,
    /// The queue was closed for shutdown.
    Closed,
}

struct State<T> {
    /// Per-client sub-queues. A BTreeMap keeps `depths()` deterministic.
    lanes: BTreeMap<u64, VecDeque<T>>,
    /// Clients with non-empty lanes, in service order: pop serves the
    /// front lane's oldest item, then rotates the lane to the back.
    rotation: VecDeque<u64>,
    len: usize,
    closed: bool,
}

/// A bounded multi-producer single-consumer queue with round-robin
/// per-client fairness.
pub struct FairQueue<T> {
    state: Mutex<State<T>>,
    available: Condvar,
    capacity: usize,
}

impl<T> FairQueue<T> {
    /// Creates a queue admitting at most `capacity` items *per client
    /// lane* at a time.
    pub fn new(capacity: usize) -> Self {
        FairQueue {
            state: Mutex::new(State {
                lanes: BTreeMap::new(),
                rotation: VecDeque::new(),
                len: 0,
                closed: false,
            }),
            available: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    // The queue must stay usable even if some thread panicked while
    // holding the lock (the daemon outlives request panics), so poisoning
    // is stripped rather than propagated: the state a push/pop leaves
    // behind is consistent at every await point.
    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Enqueues `item` on `client`'s lane if the lane has room and the
    /// queue is open. Never blocks.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] when the client's lane is at capacity,
    /// [`PushError::Closed`] after [`FairQueue::close`].
    pub fn try_push(&self, client: u64, item: T) -> Result<(), PushError> {
        let mut state = self.lock();
        if state.closed {
            return Err(PushError::Closed);
        }
        let lane = state.lanes.entry(client).or_default();
        if lane.len() >= self.capacity {
            return Err(PushError::Full);
        }
        let lane_was_empty = lane.is_empty();
        lane.push_back(item);
        state.len += 1;
        if lane_was_empty {
            state.rotation.push_back(client);
        }
        drop(state);
        self.available.notify_one();
        Ok(())
    }

    /// Dequeues the next item round-robin across client lanes, blocking
    /// while the queue is empty and open. Returns `None` once the queue is
    /// closed *and* drained — the worker's signal to exit after serving
    /// everything that was admitted.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.lock();
        loop {
            if let Some(client) = state.rotation.pop_front() {
                let lane = state
                    .lanes
                    .get_mut(&client)
                    .expect("rotation entries always have a lane");
                let item = lane.pop_front().expect("rotated lanes are non-empty");
                let drained = lane.is_empty();
                state.len -= 1;
                if drained {
                    state.lanes.remove(&client);
                } else {
                    state.rotation.push_back(client);
                }
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self
                .available
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Closes the queue: future pushes fail, the consumer drains what is
    /// left and then sees `None`.
    pub fn close(&self) {
        self.lock().closed = true;
        self.available.notify_all();
    }

    /// Items currently waiting across every lane (the queue-depth stat).
    pub fn len(&self) -> usize {
        self.lock().len
    }

    /// Whether no items are waiting.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Per-client `(client, depth)` pairs for every non-empty lane, in
    /// client order — the `queue_depths` stat.
    pub fn depths(&self) -> Vec<(u64, usize)> {
        self.lock()
            .lanes
            .iter()
            .map(|(&client, lane)| (client, lane.len()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rejects_when_lane_full_and_after_close() {
        let q = FairQueue::new(2);
        assert_eq!(q.try_push(1, "a1"), Ok(()));
        assert_eq!(q.try_push(1, "a2"), Ok(()));
        assert_eq!(q.try_push(1, "a3"), Err(PushError::Full));
        // A full lane does not block other clients' admission.
        assert_eq!(q.try_push(2, "b1"), Ok(()));
        assert_eq!(q.len(), 3);
        assert_eq!(q.depths(), vec![(1, 2), (2, 1)]);
        q.close();
        assert_eq!(q.try_push(3, "c1"), Err(PushError::Closed));
    }

    #[test]
    fn drains_round_robin_across_clients_then_signals_closed() {
        let q = FairQueue::new(8);
        // Client 1 floods before client 2 gets a word in.
        q.try_push(1, "a1").unwrap();
        q.try_push(1, "a2").unwrap();
        q.try_push(1, "a3").unwrap();
        q.try_push(2, "b1").unwrap();
        q.try_push(3, "c1").unwrap();
        q.close();
        // Round-robin: the quiet clients' items interleave with the flood
        // instead of waiting behind it.
        assert_eq!(q.pop(), Some("a1"));
        assert_eq!(q.pop(), Some("b1"));
        assert_eq!(q.pop(), Some("c1"));
        assert_eq!(q.pop(), Some("a2"));
        assert_eq!(q.pop(), Some("a3"));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn single_client_drains_fifo() {
        let q = FairQueue::new(4);
        q.try_push(9, "a").unwrap();
        q.try_push(9, "b").unwrap();
        q.close();
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), Some("b"));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn reused_client_ids_resume_their_lane_position() {
        let q = FairQueue::new(4);
        q.try_push(1, "a1").unwrap();
        q.try_push(2, "b1").unwrap();
        assert_eq!(q.pop(), Some("a1"));
        // Lane 1 emptied and was removed; a new push re-registers it at
        // the back of the rotation.
        q.try_push(1, "a2").unwrap();
        q.close();
        assert_eq!(q.pop(), Some("b1"));
        assert_eq!(q.pop(), Some("a2"));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn pop_blocks_until_an_item_arrives() {
        let q = Arc::new(FairQueue::new(1));
        let consumer = {
            let q = q.clone();
            std::thread::spawn(move || q.pop())
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.try_push(5, 7).unwrap();
        assert_eq!(consumer.join().unwrap(), Some(7));
    }
}
