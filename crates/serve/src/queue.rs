//! The bounded FIFO work queue between connection readers and the worker.
//!
//! Admission is non-blocking (`try_push` fails fast when full — the
//! backpressure signal clients see as a `queue-full` error), consumption
//! blocks, and closing the queue lets the worker drain what was already
//! admitted before exiting — the graceful-shutdown contract.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, PoisonError};

/// Why a push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity.
    Full,
    /// The queue was closed for shutdown.
    Closed,
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer single-consumer FIFO queue.
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    available: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue admitting at most `capacity` items at a time.
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            state: Mutex::new(State {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            available: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    // The queue must stay usable even if some thread panicked while
    // holding the lock (the daemon outlives request panics), so poisoning
    // is stripped rather than propagated: the state a push/pop leaves
    // behind is consistent at every await point.
    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Enqueues `item` if there is room and the queue is open. Never
    /// blocks.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at capacity, [`PushError::Closed`] after
    /// [`BoundedQueue::close`].
    pub fn try_push(&self, item: T) -> Result<(), PushError> {
        let mut state = self.lock();
        if state.closed {
            return Err(PushError::Closed);
        }
        if state.items.len() >= self.capacity {
            return Err(PushError::Full);
        }
        state.items.push_back(item);
        drop(state);
        self.available.notify_one();
        Ok(())
    }

    /// Dequeues the oldest item, blocking while the queue is empty and
    /// open. Returns `None` once the queue is closed *and* drained — the
    /// worker's signal to exit after serving everything that was admitted.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.lock();
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self
                .available
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Closes the queue: future pushes fail, the consumer drains what is
    /// left and then sees `None`.
    pub fn close(&self) {
        self.lock().closed = true;
        self.available.notify_all();
    }

    /// Items currently waiting (the queue-depth stat).
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// Whether no items are waiting.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rejects_when_full_and_after_close() {
        let q = BoundedQueue::new(2);
        assert_eq!(q.try_push(1), Ok(()));
        assert_eq!(q.try_push(2), Ok(()));
        assert_eq!(q.try_push(3), Err(PushError::Full));
        assert_eq!(q.len(), 2);
        q.close();
        assert_eq!(q.try_push(4), Err(PushError::Closed));
    }

    #[test]
    fn drains_in_fifo_order_then_signals_closed() {
        let q = BoundedQueue::new(4);
        q.try_push("a").unwrap();
        q.try_push("b").unwrap();
        q.close();
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), Some("b"));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn pop_blocks_until_an_item_arrives() {
        let q = Arc::new(BoundedQueue::new(1));
        let consumer = {
            let q = q.clone();
            std::thread::spawn(move || q.pop())
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.try_push(7).unwrap();
        assert_eq!(consumer.join().unwrap(), Some(7));
    }
}
