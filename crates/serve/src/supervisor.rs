//! The multi-worker supervisor: process-isolated shards behind one socket.
//!
//! `nisqc serve --workers N` runs this instead of a single [`Server`]:
//! the supervisor binds the public endpoint, forks `N` worker processes
//! (each an ordinary single-session daemon on a private Unix socket), and
//! routes every run request by **rendezvous hash of its plan
//! fingerprint** — the same plan always lands on the same live shard, so
//! each shard's compile and placement caches stay warm for its slice of
//! the workload.
//!
//! Fault handling is layered:
//!
//! - a **monitor thread per shard** pings its control connection every
//!   heartbeat interval; a worker that misses heartbeats past the
//!   liveness deadline, or whose process exits, is killed, reaped, and
//!   respawned after a capped exponential backoff with deterministic
//!   per-shard jitter (the backoff never exceeds the request deadline
//!   cap, so a restarting fleet is never gone longer than one request);
//! - a request in flight on a dying shard is **re-dispatched** to the
//!   next shard the hash prefers, after the dead process is reaped —
//!   never before, so two processes cannot write one journal. With a
//!   shared `--journal-dir`, the surviving shard resumes the dead one's
//!   journal and replays finished cells bit-identically;
//! - when every candidate is gone the client gets a `worker-lost` error
//!   with a deterministic jittered `retry_after_ms`, mirroring the
//!   `queue-full` contract.
//!
//! Control operations (`ping`, `stats`, `shutdown`) are answered by the
//! supervisor itself; `stats` reports per-shard liveness, restart,
//! routing and in-flight counts plus fleet totals.

use crate::error::ServeError;
use crate::request::{self, Budgets, Op};
use crate::response;
use crate::server::{
    bind_listener, retry_jitter_ms, shutting_down_error, Conn, Endpoint, Listener, ServerConfig,
};
use crate::signal;
use crate::worker::{WorkerHandle, WorkerSpec};
use nisq_exp::{fnv64, json};
use std::io::{self, Read};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tunables of a [`Supervisor`]. `server` carries the admission budgets
/// and request deadline the supervisor enforces at its front door; the
/// worker processes are expected to be launched (via [`WorkerSpec`]) with
/// matching limits so both layers agree.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// How many worker processes to run.
    pub workers: usize,
    /// Front-door limits: budgets, request deadline, queue capacity
    /// (applied per shard), request line size.
    pub server: ServerConfig,
    /// Directory for the shards' private Unix sockets.
    pub runtime_dir: PathBuf,
    /// How to launch one worker process.
    pub spec: WorkerSpec,
    /// Interval between heartbeat pings to each shard.
    pub heartbeat_interval: Duration,
    /// A shard whose last successful heartbeat is older than this is
    /// declared wedged: killed, reaped, restarted.
    pub liveness_deadline: Duration,
    /// First restart backoff; doubles per consecutive failed respawn.
    pub restart_backoff_base: Duration,
    /// Upper bound on the restart backoff. Clamped at bind time to the
    /// request deadline cap, so a restarting shard is never out longer
    /// than one request is allowed to run.
    pub restart_backoff_cap: Duration,
    /// Most re-dispatch attempts after a shard dies mid-request before
    /// answering `worker-lost`.
    pub max_redispatch: usize,
}

impl SupervisorConfig {
    /// A supervisor launching `workers` copies of `exe serve --unix
    /// {socket}` with sockets under `runtime_dir`, with default
    /// supervision timings. Callers extend `spec.args` to mirror their
    /// server flags onto the workers.
    pub fn new(workers: usize, server: ServerConfig, runtime_dir: PathBuf, exe: PathBuf) -> Self {
        SupervisorConfig {
            workers,
            server,
            runtime_dir,
            spec: WorkerSpec {
                exe,
                args: vec!["serve".into(), "--unix".into(), "{socket}".into()],
                env: Vec::new(),
                spawn_timeout: Duration::from_secs(10),
            },
            heartbeat_interval: Duration::from_millis(500),
            liveness_deadline: Duration::from_secs(3),
            restart_backoff_base: Duration::from_millis(200),
            restart_backoff_cap: Duration::from_secs(10),
            max_redispatch: 2,
        }
    }
}

/// Everything the accept loop, connection threads and monitors share.
struct SupShared {
    workers: Vec<WorkerHandle>,
    spec: WorkerSpec,
    shutdown: AtomicBool,
    connections: AtomicU64,
    accepted: AtomicU64,
    redispatches: AtomicU64,
    worker_lost: AtomicU64,
    rejected: AtomicU64,
    budgets: Budgets,
    request_timeout: Duration,
    max_request_bytes: usize,
    per_worker_capacity: usize,
    heartbeat_interval: Duration,
    liveness_deadline: Duration,
    restart_backoff_base: Duration,
    restart_backoff_cap: Duration,
    max_redispatch: usize,
}

impl SupShared {
    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst) || signal::received()
    }
}

/// The supervisor daemon. Bind, then [`Supervisor::run`] on the current
/// thread (the CLI does this) or [`Supervisor::spawn`] for a joinable
/// handle (tests do this).
pub struct Supervisor {
    listener: Listener,
    local_addr: Option<SocketAddr>,
    shared: Arc<SupShared>,
}

/// A handle onto a spawned supervisor: its address, a shutdown switch,
/// and a join point.
pub struct SupervisorHandle {
    thread: JoinHandle<io::Result<()>>,
    shared: Arc<SupShared>,
    local_addr: Option<SocketAddr>,
}

impl SupervisorHandle {
    /// The bound TCP address, if listening on TCP.
    pub fn addr(&self) -> Option<SocketAddr> {
        self.local_addr
    }

    /// Requests graceful shutdown: refuse new work, shut the shards down,
    /// exit.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }

    /// Waits for the supervisor to exit.
    ///
    /// # Errors
    ///
    /// Propagates the accept loop's I/O error, or reports a crashed
    /// supervisor thread.
    pub fn join(self) -> io::Result<()> {
        self.thread
            .join()
            .map_err(|_| io::Error::other("supervisor thread panicked"))?
    }
}

impl Supervisor {
    /// Binds the public endpoint and spawns every worker process. A
    /// worker that fails to come up is a bind error: the fleet starts
    /// whole or not at all (restarts later are the monitors' job).
    ///
    /// # Errors
    ///
    /// Socket creation, runtime-dir creation, or initial worker spawn
    /// failures; every already-spawned worker is killed before returning.
    pub fn bind(endpoint: &Endpoint, config: SupervisorConfig) -> io::Result<Supervisor> {
        if config.workers == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "a supervisor needs at least one worker",
            ));
        }
        std::fs::create_dir_all(&config.runtime_dir)?;
        let (listener, local_addr) = bind_listener(endpoint)?;
        let workers: Vec<WorkerHandle> = (0..config.workers)
            .map(|index| {
                WorkerHandle::new(
                    index,
                    config.runtime_dir.join(format!("worker-{index}.sock")),
                )
            })
            .collect();
        for worker in &workers {
            if let Err(e) = worker.spawn_process(&config.spec) {
                for spawned in &workers {
                    spawned.kill_and_reap();
                }
                return Err(e);
            }
        }
        let shared = Arc::new(SupShared {
            workers,
            spec: config.spec,
            shutdown: AtomicBool::new(false),
            connections: AtomicU64::new(0),
            accepted: AtomicU64::new(0),
            redispatches: AtomicU64::new(0),
            worker_lost: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            budgets: config.server.budgets(),
            request_timeout: config.server.request_timeout,
            max_request_bytes: config.server.max_request_bytes,
            per_worker_capacity: config.server.queue_capacity,
            heartbeat_interval: config.heartbeat_interval,
            liveness_deadline: config.liveness_deadline,
            restart_backoff_base: config.restart_backoff_base,
            restart_backoff_cap: config
                .restart_backoff_cap
                .min(config.server.request_timeout),
            max_redispatch: config.max_redispatch,
        });
        Ok(Supervisor {
            listener,
            local_addr,
            shared,
        })
    }

    /// The bound TCP address, if listening on TCP (useful after binding
    /// port 0).
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.local_addr
    }

    /// Runs the supervisor on the current thread until shutdown (SIGINT,
    /// a `shutdown` request, or [`SupervisorHandle::shutdown`]), then
    /// shuts the fleet down gracefully.
    ///
    /// # Errors
    ///
    /// Propagates accept-loop I/O failures other than transient ones.
    pub fn run(self) -> io::Result<()> {
        let Supervisor {
            listener, shared, ..
        } = self;
        let monitors: Vec<JoinHandle<()>> = (0..shared.workers.len())
            .map(|index| {
                let shared = shared.clone();
                std::thread::spawn(move || monitor_loop(&shared, index))
            })
            .collect();
        let mut connections: Vec<JoinHandle<()>> = Vec::new();
        let mut accept_error = None;

        while !shared.shutting_down() {
            match listener.accept() {
                Ok(stream) => {
                    let client = shared.connections.fetch_add(1, Ordering::Relaxed);
                    let shared = shared.clone();
                    connections.push(std::thread::spawn(move || {
                        handle_connection(stream, &shared, client)
                    }));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(25));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => {
                    accept_error = Some(e);
                    break;
                }
            }
            connections.retain(|handle| !handle.is_finished());
        }

        shared.shutdown.store(true, Ordering::SeqCst);
        for handle in monitors {
            let _ = handle.join();
        }
        for handle in connections {
            let _ = handle.join();
        }
        // Shut the fleet down after the front door closed: ask each
        // worker to drain, give it a grace period, then reap.
        let grace = Instant::now() + Duration::from_millis(500);
        for worker in &shared.workers {
            worker.request_shutdown(grace);
        }
        for worker in &shared.workers {
            worker.shutdown_and_reap(Duration::from_secs(5));
        }
        drop(listener);
        match accept_error {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Spawns [`Supervisor::run`] on a background thread.
    pub fn spawn(self) -> SupervisorHandle {
        let shared = self.shared.clone();
        let local_addr = self.local_addr;
        let thread = std::thread::spawn(move || self.run());
        SupervisorHandle {
            thread,
            shared,
            local_addr,
        }
    }
}

/// Rendezvous (highest-random-weight) routing: every live shard scores
/// the fingerprint, the highest score wins. Stable — the same fingerprint
/// picks the same shard while it lives — and minimal on failure: a dead
/// shard's plans move to their next-highest choice, nothing else moves.
pub fn route_worker(fingerprint: u64, alive: &[bool]) -> Option<usize> {
    let mut best: Option<(u64, usize)> = None;
    for (index, &ok) in alive.iter().enumerate() {
        if !ok {
            continue;
        }
        let mut z = fingerprint ^ (index as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        if best.is_none_or(|(score, _)| z > score) {
            best = Some((z, index));
        }
    }
    best.map(|(_, index)| index)
}

/// The backoff before respawn attempt `attempt` of shard `worker`:
/// exponential from `base`, plus deterministic jitter (up to a quarter of
/// the exponential term, keyed on shard and attempt so a fleet dying
/// together does not respawn in lockstep), capped at `cap`.
pub fn restart_backoff(attempt: u32, worker: usize, base: Duration, cap: Duration) -> Duration {
    let doublings = attempt.min(16);
    let exp = base.saturating_mul(1u32 << doublings).min(cap);
    let window = exp.as_millis() as u64 / 4 + 1;
    let jitter = fnv64(format!("{worker}:{attempt}").as_bytes()) % window;
    (exp + Duration::from_millis(jitter)).min(cap)
}

/// One shard's keeper: heartbeats while it lives, reaps it when it
/// wedges or exits, respawns it after backoff.
fn monitor_loop(shared: &SupShared, index: usize) {
    let worker = &shared.workers[index];
    let mut last_ok = Instant::now();
    let mut attempt: u32 = 0;
    while !shared.shutting_down() {
        if worker.alive() {
            if worker.child_exited() {
                // The process died on its own (OOM kill, abort, SIGKILL
                // from outside): reap immediately, no heartbeat needed.
                worker.kill_and_reap();
                continue;
            }
            match worker.ping(Instant::now() + shared.heartbeat_interval) {
                Ok(()) => last_ok = Instant::now(),
                Err(_) => {
                    if last_ok.elapsed() >= shared.liveness_deadline {
                        // Alive as a process, dead as a service: wedged.
                        worker.kill_and_reap();
                        continue;
                    }
                }
            }
            sleep_interruptibly(shared, shared.heartbeat_interval);
        } else {
            let backoff = restart_backoff(
                attempt,
                index,
                shared.restart_backoff_base,
                shared.restart_backoff_cap,
            );
            sleep_interruptibly(shared, backoff);
            if shared.shutting_down() {
                return;
            }
            match worker.spawn_process(&shared.spec) {
                Ok(()) => {
                    worker.restarts.fetch_add(1, Ordering::Relaxed);
                    last_ok = Instant::now();
                    attempt = 0;
                }
                Err(_) => attempt = attempt.saturating_add(1),
            }
        }
    }
}

/// Sleeps `total` in small slices, returning early on shutdown.
fn sleep_interruptibly(shared: &SupShared, total: Duration) {
    let deadline = Instant::now() + total;
    while Instant::now() < deadline && !shared.shutting_down() {
        let left = deadline.saturating_duration_since(Instant::now());
        std::thread::sleep(left.min(Duration::from_millis(20)));
    }
}

/// The per-connection front door: frames lines, answers control ops
/// itself, forwards runs. A run blocks this connection's reader until
/// its shard answers (one in-flight run per client connection); other
/// connections proceed in parallel on other shards.
fn handle_connection(stream: Box<dyn Conn>, shared: &SupShared, client: u64) {
    if stream.set_timeouts().is_err() {
        return;
    }
    let Ok(write_half) = stream.split() else {
        return;
    };
    let (reply, responses) = sync_channel::<String>(16);
    let writer = std::thread::spawn(move || write_loop(write_half, &responses));

    read_requests(stream, shared, &reply, client);

    drop(reply);
    let _ = writer.join();
}

fn write_loop(mut stream: Box<dyn Conn>, responses: &Receiver<String>) {
    use std::io::Write;
    while let Ok(line) = responses.recv() {
        if stream.write_all(line.as_bytes()).is_err()
            || stream.write_all(b"\n").is_err()
            || stream.flush().is_err()
        {
            break;
        }
    }
}

fn read_requests(
    mut stream: Box<dyn Conn>,
    shared: &SupShared,
    reply: &SyncSender<String>,
    client: u64,
) {
    let mut buffer: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => return,
            Ok(n) => {
                buffer.extend_from_slice(&chunk[..n]);
                while let Some(pos) = buffer.iter().position(|&b| b == b'\n') {
                    let line_bytes: Vec<u8> = buffer.drain(..=pos).collect();
                    let line = String::from_utf8_lossy(&line_bytes[..pos]);
                    let line = line.trim();
                    if line.is_empty() {
                        continue;
                    }
                    handle_line(line, shared, reply, client);
                }
                if buffer.len() > shared.max_request_bytes {
                    let err = ServeError::Protocol {
                        message: format!("request line exceeds {} bytes", shared.max_request_bytes),
                    };
                    let _ = reply.send(response::error_line(None, &err));
                    return;
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut
                    || e.kind() == io::ErrorKind::Interrupted =>
            {
                if shared.shutting_down() {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

fn handle_line(line: &str, shared: &SupShared, reply: &SyncSender<String>, _client: u64) {
    let request = match request::parse_request(line) {
        Ok(request) => request,
        Err(err) => {
            shared.rejected.fetch_add(1, Ordering::Relaxed);
            let _ = reply.send(response::error_line(None, &err));
            return;
        }
    };
    let id = request.id.as_deref();
    match request.op {
        Op::Ping => {
            let _ = reply.send(response::ping_line(id));
        }
        Op::Stats => {
            let _ = reply.send(stats_line(id, shared));
        }
        Op::Shutdown => {
            shared.shutdown.store(true, Ordering::SeqCst);
            let _ = reply.send(response::shutdown_line(id));
        }
        Op::Run { plan, .. } => {
            if shared.shutting_down() {
                shared.rejected.fetch_add(1, Ordering::Relaxed);
                let _ = reply.send(response::error_line(id, &shutting_down_error(id)));
                return;
            }
            if let Err(err) = request::admit(&plan, &shared.budgets) {
                shared.rejected.fetch_add(1, Ordering::Relaxed);
                let _ = reply.send(response::error_line(id, &err));
                return;
            }
            shared.accepted.fetch_add(1, Ordering::Relaxed);
            let fingerprint = plan.fingerprint();
            drop(plan);
            let response = dispatch(shared, line, id, fingerprint);
            let _ = reply.send(response);
        }
    }
}

/// Routes one admitted run to its shard and forwards it; on shard death
/// mid-request, reaps the shard and re-dispatches to the next-preferred
/// survivor (bounded by `max_redispatch`). The request line travels
/// verbatim, so the worker parses exactly what the client sent —
/// journal flags, resume keys, timeouts and all.
fn dispatch(shared: &SupShared, line: &str, id: Option<&str>, fingerprint: u64) -> String {
    let deadline = Instant::now() + shared.request_timeout + shared.liveness_deadline;
    let mut excluded = vec![false; shared.workers.len()];
    for attempt in 0..=shared.max_redispatch {
        let candidates: Vec<bool> = shared
            .workers
            .iter()
            .enumerate()
            .map(|(i, w)| w.alive() && !excluded[i])
            .collect();
        let Some(index) = route_worker(fingerprint, &candidates) else {
            break;
        };
        let worker = &shared.workers[index];
        if worker.pending.load(Ordering::SeqCst) >= shared.per_worker_capacity as u64 {
            let retry_after_ms =
                100 + 150 * worker.pending.load(Ordering::SeqCst) + retry_jitter_ms(id);
            return response::error_line(id, &ServeError::QueueFull { retry_after_ms });
        }
        if attempt > 0 {
            shared.redispatches.fetch_add(1, Ordering::Relaxed);
        }
        worker.routed.fetch_add(1, Ordering::Relaxed);
        worker.pending.fetch_add(1, Ordering::SeqCst);
        let result = worker.forward(line, deadline);
        worker.pending.fetch_sub(1, Ordering::SeqCst);
        match result {
            Ok(response) => return response,
            Err(_) => {
                // Reap before re-dispatch: the journal the dead shard may
                // have been writing must have no writer before a survivor
                // resumes it.
                worker.kill_and_reap();
                excluded[index] = true;
            }
        }
    }
    shared.worker_lost.fetch_add(1, Ordering::Relaxed);
    response::error_line(
        id,
        &ServeError::WorkerLost {
            message: "every candidate worker died mid-request".to_string(),
            retry_after_ms: 500 + retry_jitter_ms(id),
        },
    )
}

/// The supervisor's `stats` response: one entry per shard plus fleet
/// totals.
fn stats_line(id: Option<&str>, shared: &SupShared) -> String {
    let get = |a: &AtomicU64| a.load(Ordering::Relaxed);
    let workers: Vec<String> = shared
        .workers
        .iter()
        .map(|w| {
            format!(
                "{{\"index\": {}, \"alive\": {}, \"pid\": {}, \"restarts\": {}, \
                 \"routed\": {}, \"pending\": {}}}",
                w.index,
                w.alive(),
                w.pid(),
                get(&w.restarts),
                get(&w.routed),
                get(&w.pending),
            )
        })
        .collect();
    let restarts: u64 = shared.workers.iter().map(|w| get(&w.restarts)).sum();
    format!(
        "{{\"id\": {}, \"status\": \"ok\", \"op\": \"stats\", \"stats\": {{\
         \"workers\": [{}], \"supervisor\": {{\"restarts\": {}, \"redispatches\": {}, \
         \"worker_lost\": {}, \"connections\": {}, \"accepted\": {}, \"rejected\": {}}}}}}}",
        match id {
            Some(id) => json::write_str(id),
            None => "null".to_string(),
        },
        workers.join(", "),
        restarts,
        get(&shared.redispatches),
        get(&shared.worker_lost),
        get(&shared.connections),
        get(&shared.accepted),
        get(&shared.rejected),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_sticky_and_moves_minimally_on_death() {
        let alive = [true, true, true];
        let picks: Vec<Option<usize>> = (0..64).map(|f| route_worker(f, &alive)).collect();
        // Deterministic.
        for (f, pick) in picks.iter().enumerate() {
            assert_eq!(*pick, route_worker(f as u64, &alive));
        }
        // Non-degenerate: more than one shard gets work.
        let distinct: std::collections::BTreeSet<_> = picks.iter().flatten().collect();
        assert!(distinct.len() > 1, "all 64 fingerprints on one shard");
        // Kill shard 1: only its fingerprints move, others stay put.
        let survivors = [true, false, true];
        for (f, pick) in picks.iter().enumerate() {
            let moved = route_worker(f as u64, &survivors);
            match pick {
                Some(1) => assert!(matches!(moved, Some(0) | Some(2))),
                other => assert_eq!(moved, *other, "fingerprint {f} moved needlessly"),
            }
        }
        // Nobody alive: nobody routed.
        assert_eq!(route_worker(7, &[false, false]), None);
        assert_eq!(route_worker(7, &[]), None);
    }

    #[test]
    fn restart_backoff_is_deterministic_capped_and_grows() {
        let base = Duration::from_millis(100);
        let cap = Duration::from_secs(2);
        let b0 = restart_backoff(0, 0, base, cap);
        assert_eq!(b0, restart_backoff(0, 0, base, cap));
        assert!(b0 >= base && b0 <= cap);
        // Grows (until the cap) and never exceeds it.
        let b3 = restart_backoff(3, 0, base, cap);
        assert!(b3 > b0);
        for attempt in 0..40 {
            assert!(restart_backoff(attempt, 1, base, cap) <= cap);
        }
        // Different shards jitter differently somewhere in the schedule.
        assert!(
            (0..8).any(|a| restart_backoff(a, 0, base, cap) != restart_backoff(a, 1, base, cap))
        );
    }
}
