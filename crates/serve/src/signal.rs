//! SIGINT/SIGTERM handling for graceful shutdown.
//!
//! The only unsafe code in the daemon lives here: registering a signal
//! handler that flips an atomic flag. The accept loop polls the flag and
//! turns it into the drain-and-exit sequence; the handler itself does
//! nothing else (it is async-signal-safe by construction).
#![allow(unsafe_code)]

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN_SIGNAL: AtomicBool = AtomicBool::new(false);

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

extern "C" fn record_signal(_signum: i32) {
    SHUTDOWN_SIGNAL.store(true, Ordering::SeqCst);
}

extern "C" {
    fn signal(signum: i32, handler: usize) -> usize;
}

/// Installs the SIGINT/SIGTERM handler. Idempotent; call once before
/// entering the accept loop.
pub fn install() {
    let handler = record_signal as extern "C" fn(i32) as usize;
    unsafe {
        signal(SIGINT, handler);
        signal(SIGTERM, handler);
    }
}

/// Whether a termination signal has been received since [`install`].
pub fn received() -> bool {
    SHUTDOWN_SIGNAL.load(Ordering::SeqCst)
}

/// Test hook: raise the flag as if a signal had arrived.
#[cfg(any(test, feature = "fault-injection"))]
pub fn raise_for_tests() {
    SHUTDOWN_SIGNAL.store(true, Ordering::SeqCst);
}

/// Test hook: clear the flag between tests.
#[cfg(any(test, feature = "fault-injection"))]
pub fn reset_for_tests() {
    SHUTDOWN_SIGNAL.store(false, Ordering::SeqCst);
}
