//! # nisq-ir — quantum circuit intermediate representation
//!
//! This crate provides the program-side substrate used by the noise-adaptive
//! NISQ compiler described in *Noise-Adaptive Compiler Mappings for Noisy
//! Intermediate-Scale Quantum Computers* (ASPLOS 2019): a gate-level circuit
//! IR, a data-dependency DAG, the qubit interaction ("program") graph, the
//! twelve evaluation benchmarks of the paper, a random-circuit generator for
//! scalability studies, and an OpenQASM 2.0 emitter/parser.
//!
//! The IR plays the role of the LLVM IR produced by ScaffCC in the paper:
//! machine-independent gates over *program qubits*, with explicit data
//! dependencies, ready to be mapped onto hardware qubits by `nisq-core`.
//!
//! # Example
//!
//! ```
//! use nisq_ir::{Circuit, Qubit};
//!
//! // Build the 4-qubit Bernstein-Vazirani kernel by hand.
//! let mut c = Circuit::new(4);
//! c.x(Qubit(3));
//! for q in 0..4 {
//!     c.h(Qubit(q));
//! }
//! for q in 0..3 {
//!     c.cnot(Qubit(q), Qubit(3));
//! }
//! for q in 0..3 {
//!     c.h(Qubit(q));
//! }
//! c.measure_all();
//! assert_eq!(c.cnot_count(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
mod benchmarks;
mod circuit;
mod dag;
mod decompose;
mod error;
mod gate;
mod graph;
pub mod qasm;
mod random;

pub use analysis::CircuitStats;
pub use benchmarks::{bernstein_vazirani, hidden_shift, Benchmark, BenchmarkInfo};
pub use circuit::Circuit;
pub use dag::{DependencyDag, Layer};
pub use error::IrError;
pub use gate::{Clbit, Gate, GateKind, Qubit};
pub use graph::InteractionGraph;
pub use random::{random_circuit, RandomCircuitConfig};
