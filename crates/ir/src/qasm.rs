//! OpenQASM 2.0 emission and parsing.
//!
//! The compiler's final output in the paper is OpenQASM code runnable on
//! IBMQ16. This module emits the subset of OpenQASM 2.0 the rest of the
//! system produces (single-qubit gates, `cx`, `swap`, `barrier`, `measure`)
//! and parses the same subset back, enabling round-trip tests and the use of
//! externally-written circuits as compiler input.

use crate::circuit::Circuit;
use crate::error::IrError;
use crate::gate::{Clbit, Gate, GateKind, Qubit};
use std::f64::consts::PI;

/// Emits OpenQASM 2.0 source for `circuit`, using a single quantum register
/// `q` and classical register `c`.
///
/// # Example
///
/// ```
/// use nisq_ir::{Circuit, Qubit, qasm};
///
/// let mut bell = Circuit::new(2);
/// bell.h(Qubit(0));
/// bell.cnot(Qubit(0), Qubit(1));
/// let src = qasm::emit(&bell);
/// assert!(src.contains("cx q[0], q[1];"));
/// ```
pub fn emit(circuit: &Circuit) -> String {
    let mut out = String::new();
    out.push_str("OPENQASM 2.0;\n");
    out.push_str("include \"qelib1.inc\";\n");
    out.push_str(&format!("qreg q[{}];\n", circuit.num_qubits()));
    out.push_str(&format!("creg c[{}];\n", circuit.num_clbits()));
    for gate in circuit.iter() {
        out.push_str(&emit_gate(gate));
        out.push('\n');
    }
    out
}

fn emit_gate(gate: &Gate) -> String {
    let q = gate.qubits();
    match gate.kind() {
        GateKind::Measure => format!("measure q[{}] -> c[{}];", q[0].0, gate.clbits()[0].0),
        GateKind::Barrier => {
            let ops: Vec<String> = q.iter().map(|x| format!("q[{}]", x.0)).collect();
            format!("barrier {};", ops.join(", "))
        }
        GateKind::Cnot => format!("cx q[{}], q[{}];", q[0].0, q[1].0),
        GateKind::Swap => format!("swap q[{}], q[{}];", q[0].0, q[1].0),
        GateKind::Rx(a) => format!("rx({a}) q[{}];", q[0].0),
        GateKind::Ry(a) => format!("ry({a}) q[{}];", q[0].0),
        GateKind::Rz(a) => format!("rz({a}) q[{}];", q[0].0),
        kind => format!("{} q[{}];", kind.mnemonic(), q[0].0),
    }
}

/// Parses the subset of OpenQASM 2.0 emitted by [`emit`].
///
/// Supports one `qreg` and one `creg` declaration, the gates
/// `h x y z s sdg t tdg rx ry rz cx swap`, `measure` and `barrier`, plus
/// comments (`//`) and blank lines. Angles may be plain numbers or simple
/// `pi`-expressions (`pi`, `pi/2`, `-pi/4`, `2*pi`).
///
/// # Errors
///
/// Returns [`IrError::QasmParse`] describing the first offending line.
///
/// # Example
///
/// ```
/// use nisq_ir::qasm;
///
/// let src = "OPENQASM 2.0;\nqreg q[2];\ncreg c[2];\nh q[0];\ncx q[0], q[1];\n";
/// let circuit = qasm::parse(src)?;
/// assert_eq!(circuit.num_qubits(), 2);
/// assert_eq!(circuit.cnot_count(), 1);
/// # Ok::<(), nisq_ir::IrError>(())
/// ```
pub fn parse(source: &str) -> Result<Circuit, IrError> {
    let mut num_qubits: Option<usize> = None;
    let mut num_clbits: Option<usize> = None;
    let mut gates: Vec<Gate> = Vec::new();

    for (idx, raw_line) in source.lines().enumerate() {
        let line_no = idx + 1;
        let line = strip_comment(raw_line).trim().to_string();
        if line.is_empty() {
            continue;
        }
        for stmt in line.split(';') {
            let stmt = stmt.trim();
            if stmt.is_empty() {
                continue;
            }
            parse_statement(stmt, line_no, &mut num_qubits, &mut num_clbits, &mut gates)?;
        }
    }

    let nq = num_qubits.ok_or(IrError::QasmParse {
        line: 0,
        message: "missing qreg declaration".into(),
    })?;
    let nc = num_clbits.unwrap_or(nq);
    let mut circuit = Circuit::with_clbits(nq, nc);
    for g in gates {
        circuit.try_push(g)?;
    }
    Ok(circuit)
}

fn strip_comment(line: &str) -> &str {
    match line.find("//") {
        Some(i) => &line[..i],
        None => line,
    }
}

fn parse_statement(
    stmt: &str,
    line: usize,
    num_qubits: &mut Option<usize>,
    num_clbits: &mut Option<usize>,
    gates: &mut Vec<Gate>,
) -> Result<(), IrError> {
    let err = |message: String| IrError::QasmParse { line, message };

    if stmt.starts_with("OPENQASM") || stmt.starts_with("include") {
        return Ok(());
    }
    if let Some(rest) = stmt.strip_prefix("qreg") {
        *num_qubits = Some(parse_reg_size(rest, line)?);
        return Ok(());
    }
    if let Some(rest) = stmt.strip_prefix("creg") {
        *num_clbits = Some(parse_reg_size(rest, line)?);
        return Ok(());
    }
    if let Some(rest) = stmt.strip_prefix("measure") {
        let parts: Vec<&str> = rest.split("->").collect();
        if parts.len() != 2 {
            return Err(err(format!("malformed measure statement: {stmt}")));
        }
        let q = parse_index(parts[0], 'q', line)?;
        let c = parse_index(parts[1], 'c', line)?;
        gates.push(Gate::measure(Qubit(q), Clbit(c)));
        return Ok(());
    }
    if let Some(rest) = stmt.strip_prefix("barrier") {
        let mut qs = Vec::new();
        for op in rest.split(',') {
            qs.push(Qubit(parse_index(op, 'q', line)?));
        }
        gates.push(Gate::barrier(qs));
        return Ok(());
    }

    // Gate applications: "<name>[(angle)] q[i](, q[j])".
    let (head, operands) = match stmt.find(" q[") {
        Some(i) => (&stmt[..i], &stmt[i..]),
        None => return Err(err(format!("unrecognised statement: {stmt}"))),
    };
    let head = head.trim();
    let ops: Vec<usize> = operands
        .split(',')
        .map(|op| parse_index(op, 'q', line))
        .collect::<Result<_, _>>()?;

    let (name, angle) = match head.find('(') {
        Some(i) => {
            let name = &head[..i];
            let inner = head[i + 1..]
                .strip_suffix(')')
                .ok_or_else(|| err(format!("unbalanced parenthesis in: {stmt}")))?;
            (name, Some(parse_angle(inner, line)?))
        }
        None => (head, None),
    };

    let single = |kind: GateKind, ops: &[usize]| -> Result<Gate, IrError> {
        if ops.len() != 1 {
            return Err(IrError::QasmParse {
                line,
                message: format!("gate {name} expects one operand"),
            });
        }
        Ok(Gate::single(kind, Qubit(ops[0])))
    };
    let double = |ops: &[usize]| -> Result<(Qubit, Qubit), IrError> {
        if ops.len() != 2 {
            return Err(IrError::QasmParse {
                line,
                message: format!("gate {name} expects two operands"),
            });
        }
        Ok((Qubit(ops[0]), Qubit(ops[1])))
    };

    let gate = match name {
        "h" => single(GateKind::H, &ops)?,
        "x" => single(GateKind::X, &ops)?,
        "y" => single(GateKind::Y, &ops)?,
        "z" => single(GateKind::Z, &ops)?,
        "s" => single(GateKind::S, &ops)?,
        "sdg" => single(GateKind::Sdg, &ops)?,
        "t" => single(GateKind::T, &ops)?,
        "tdg" => single(GateKind::Tdg, &ops)?,
        "rx" => single(
            GateKind::Rx(angle.ok_or_else(|| err("rx requires an angle".into()))?),
            &ops,
        )?,
        "ry" => single(
            GateKind::Ry(angle.ok_or_else(|| err("ry requires an angle".into()))?),
            &ops,
        )?,
        "rz" => single(
            GateKind::Rz(angle.ok_or_else(|| err("rz requires an angle".into()))?),
            &ops,
        )?,
        "cx" | "CX" => {
            let (c, t) = double(&ops)?;
            Gate::cnot(c, t)
        }
        "swap" => {
            let (a, b) = double(&ops)?;
            Gate::swap(a, b)
        }
        other => return Err(err(format!("unknown gate: {other}"))),
    };
    gates.push(gate);
    Ok(())
}

/// Largest register size [`parse`] accepts. Untrusted QASM is rejected with
/// [`IrError::RegisterTooLarge`] before any per-qubit allocation happens;
/// simulation-size limits downstream are far tighter than this.
pub const MAX_REGISTER_SIZE: usize = 1 << 16;

fn parse_reg_size(rest: &str, line: usize) -> Result<usize, IrError> {
    let rest = rest.trim();
    let open = rest.find('[');
    let close = rest.find(']');
    let size: usize = match (open, close) {
        (Some(o), Some(c)) if c > o => {
            rest[o + 1..c]
                .trim()
                .parse()
                .map_err(|_| IrError::QasmParse {
                    line,
                    message: format!("invalid register size in: {rest}"),
                })?
        }
        _ => {
            return Err(IrError::QasmParse {
                line,
                message: format!("malformed register declaration: {rest}"),
            })
        }
    };
    if size > MAX_REGISTER_SIZE {
        return Err(IrError::RegisterTooLarge {
            requested: size,
            max: MAX_REGISTER_SIZE,
        });
    }
    Ok(size)
}

fn parse_index(op: &str, reg: char, line: usize) -> Result<usize, IrError> {
    let op = op.trim();
    let expected_prefix = format!("{reg}[");
    if let Some(rest) = op.strip_prefix(&expected_prefix) {
        if let Some(inner) = rest.strip_suffix(']') {
            return inner.trim().parse().map_err(|_| IrError::QasmParse {
                line,
                message: format!("invalid index in operand: {op}"),
            });
        }
    }
    Err(IrError::QasmParse {
        line,
        message: format!("expected operand of register '{reg}', found: {op}"),
    })
}

fn parse_angle(expr: &str, line: usize) -> Result<f64, IrError> {
    let expr = expr.trim();
    if let Ok(v) = expr.parse::<f64>() {
        return Ok(v);
    }
    let err = || IrError::QasmParse {
        line,
        message: format!("cannot parse angle expression: {expr}"),
    };
    // Simple pi expressions: [-][k*]pi[/d]
    let (negative, body) = match expr.strip_prefix('-') {
        Some(rest) => (true, rest.trim()),
        None => (false, expr),
    };
    let (mult, body) = match body.find("*pi") {
        Some(i) => {
            let m: f64 = body[..i].trim().parse().map_err(|_| err())?;
            (m, &body[i + 1..])
        }
        None => (1.0, body),
    };
    if !body.starts_with("pi") {
        return Err(err());
    }
    let rest = &body[2..];
    let div = if let Some(d) = rest.strip_prefix('/') {
        d.trim().parse::<f64>().map_err(|_| err())?
    } else if rest.trim().is_empty() {
        1.0
    } else {
        return Err(err());
    };
    let val = mult * PI / div;
    Ok(if negative { -val } else { val })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks::Benchmark;

    #[test]
    fn emit_contains_headers_and_registers() {
        let c = Benchmark::Bv4.circuit();
        let src = emit(&c);
        assert!(src.starts_with("OPENQASM 2.0;"));
        assert!(src.contains("qreg q[4];"));
        assert!(src.contains("creg c[4];"));
        assert!(src.contains("measure q[0] -> c[0];"));
    }

    #[test]
    fn round_trip_preserves_every_benchmark() {
        for b in Benchmark::all() {
            let original = b.circuit();
            let parsed = parse(&emit(&original)).expect("round trip should parse");
            assert_eq!(parsed.num_qubits(), original.num_qubits(), "{b}");
            assert_eq!(parsed.len(), original.len(), "{b}");
            assert_eq!(parsed.cnot_count(), original.cnot_count(), "{b}");
            for (g1, g2) in original.iter().zip(parsed.iter()) {
                assert_eq!(g1.qubits(), g2.qubits(), "{b}");
            }
        }
    }

    #[test]
    fn parse_accepts_pi_expressions() {
        let src = "qreg q[1];\ncreg c[1];\nrz(pi/2) q[0];\nrx(-pi/4) q[0];\nry(2*pi) q[0];";
        let c = parse(src).unwrap();
        match c.gates()[0].kind() {
            GateKind::Rz(a) => assert!((a - PI / 2.0).abs() < 1e-12),
            other => panic!("unexpected kind {other:?}"),
        }
        match c.gates()[1].kind() {
            GateKind::Rx(a) => assert!((a + PI / 4.0).abs() < 1e-12),
            other => panic!("unexpected kind {other:?}"),
        }
        match c.gates()[2].kind() {
            GateKind::Ry(a) => assert!((a - 2.0 * PI).abs() < 1e-12),
            other => panic!("unexpected kind {other:?}"),
        }
    }

    #[test]
    fn parse_reports_unknown_gate_with_line_number() {
        let src = "qreg q[1];\ncreg c[1];\nfoo q[0];";
        let err = parse(src).unwrap_err();
        match err {
            IrError::QasmParse { line, message } => {
                assert_eq!(line, 3);
                assert!(message.contains("foo"));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn parse_requires_qreg() {
        let err = parse("creg c[2];\n").unwrap_err();
        assert!(matches!(err, IrError::QasmParse { .. }));
    }

    #[test]
    fn parse_ignores_comments_and_blank_lines() {
        let src =
            "// a bell pair\nqreg q[2];\ncreg c[2];\n\nh q[0]; // superpose\ncx q[0], q[1];\n";
        let c = parse(src).unwrap();
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn parse_rejects_out_of_range_operand() {
        let src = "qreg q[2];\ncreg c[2];\ncx q[0], q[5];";
        assert!(parse(src).is_err());
    }

    #[test]
    fn parse_handles_multiple_statements_per_line() {
        let src = "qreg q[2]; creg c[2]; h q[0]; cx q[0], q[1];";
        let c = parse(src).unwrap();
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn parse_rejects_oversized_registers_without_allocating() {
        let src = format!("qreg q[{}];\ncreg c[2];\nh q[0];", MAX_REGISTER_SIZE + 1);
        match parse(&src).unwrap_err() {
            IrError::RegisterTooLarge { requested, max } => {
                assert_eq!(requested, MAX_REGISTER_SIZE + 1);
                assert_eq!(max, MAX_REGISTER_SIZE);
            }
            other => panic!("unexpected error {other:?}"),
        }
        // The boundary itself is accepted (declaration only, no gates).
        let src = format!("qreg q[{MAX_REGISTER_SIZE}];\ncreg c[1];");
        assert!(parse(&src).is_ok());
    }

    #[test]
    fn malformed_input_yields_typed_errors_never_panics() {
        // Each entry is (description, source). All must return Err — the
        // battery exists to prove untrusted QASM cannot panic the parser.
        let cases: &[(&str, &str)] = &[
            ("negative register size", "qreg q[-4];"),
            ("non-numeric register size", "qreg q[two];"),
            ("missing bracket in qreg", "qreg q4];"),
            ("reversed brackets in qreg", "qreg q]4[;"),
            ("empty register size", "qreg q[];"),
            (
                "huge register size overflow",
                "qreg q[99999999999999999999];",
            ),
            ("truncated measure", "qreg q[2]; creg c[2]; measure q[0];"),
            (
                "measure into wrong register",
                "qreg q[2]; creg c[2]; measure q[0] -> q[1];",
            ),
            ("unknown gate", "qreg q[1]; frobnicate q[0];"),
            ("unknown statement", "qreg q[1]; gibberish;"),
            ("unbalanced parenthesis", "qreg q[1]; rx(pi/2 q[0];"),
            ("missing angle", "qreg q[1]; rz q[0];"),
            ("bad angle expression", "qreg q[1]; rx(banana) q[0];"),
            ("bad pi divisor", "qreg q[1]; rz(pi/zero) q[0];"),
            ("cx with one operand", "qreg q[2]; cx q[0];"),
            ("cx with three operands", "qreg q[3]; cx q[0], q[1], q[2];"),
            ("h with two operands", "qreg q[2]; h q[0], q[1];"),
            ("duplicate cx operands", "qreg q[2]; cx q[0], q[0];"),
            ("operand index out of range", "qreg q[2]; h q[7];"),
            ("operand with bad index", "qreg q[2]; h q[x];"),
            ("operand missing close bracket", "qreg q[2]; h q[0;"),
            (
                "clbit out of range",
                "qreg q[2]; creg c[1]; measure q[1] -> c[1];",
            ),
            ("barrier on bad operand", "qreg q[2]; barrier q[0], nope;"),
            ("no qreg at all", "creg c[3]; h q[0];"),
        ];
        for (what, src) in cases {
            let err = std::panic::catch_unwind(|| parse(src))
                .unwrap_or_else(|_| panic!("{what}: parser panicked"));
            assert!(err.is_err(), "{what}: expected a typed error, got Ok");
        }
    }

    #[test]
    fn barrier_round_trips() {
        let mut c = Circuit::new(3);
        c.barrier_all();
        let parsed = parse(&emit(&c)).unwrap();
        assert_eq!(parsed.gates()[0].kind(), GateKind::Barrier);
        assert_eq!(parsed.gates()[0].qubits().len(), 3);
    }
}
