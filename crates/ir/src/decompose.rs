//! Decompositions of multi-qubit primitives into the hardware gate set
//! (single-qubit gates plus CNOT), playing the role of the automatic gate
//! decomposition ScaffCC performs before handing the IR to the backend.

use crate::circuit::Circuit;
use crate::gate::Qubit;

impl Circuit {
    /// Appends a controlled-Z between `a` and `b` using `H . CNOT . H` on the
    /// target.
    pub fn cz(&mut self, a: Qubit, b: Qubit) -> &mut Self {
        self.h(b);
        self.cnot(a, b);
        self.h(b);
        self
    }

    /// Appends a controlled phase rotation by `angle` (the `cu1` gate of
    /// OpenQASM) decomposed into Rz rotations and two CNOTs.
    pub fn cphase(&mut self, control: Qubit, target: Qubit, angle: f64) -> &mut Self {
        self.rz(control, angle / 2.0);
        self.cnot(control, target);
        self.rz(target, -angle / 2.0);
        self.cnot(control, target);
        self.rz(target, angle / 2.0);
        self
    }

    /// Appends a Toffoli (CCX) gate with controls `a`, `b` and target `c`
    /// using the standard 6-CNOT, 7-T decomposition.
    pub fn toffoli(&mut self, a: Qubit, b: Qubit, c: Qubit) -> &mut Self {
        self.h(c);
        self.cnot(b, c);
        self.tdg(c);
        self.cnot(a, c);
        self.t(c);
        self.cnot(b, c);
        self.tdg(c);
        self.cnot(a, c);
        self.t(b);
        self.t(c);
        self.h(c);
        self.cnot(a, b);
        self.t(a);
        self.tdg(b);
        self.cnot(a, b);
        self
    }

    /// Appends a Fredkin (controlled-SWAP) gate with control `c` swapping
    /// `a` and `b`: `CNOT(b,a) . Toffoli(c,a,b) . CNOT(b,a)`.
    pub fn fredkin(&mut self, c: Qubit, a: Qubit, b: Qubit) -> &mut Self {
        self.cnot(b, a);
        self.toffoli(c, a, b);
        self.cnot(b, a);
        self
    }

    /// Appends a Peres gate on `(a, b, c)`: a Toffoli targeting `c` followed
    /// by a CNOT from `a` to `b`, using a merged decomposition with five
    /// CNOTs.
    pub fn peres(&mut self, a: Qubit, b: Qubit, c: Qubit) -> &mut Self {
        // Toffoli with the trailing CNOT(a,b) cancelled against the CNOT of
        // the Peres definition, leaving 5 CNOTs.
        self.h(c);
        self.cnot(b, c);
        self.tdg(c);
        self.cnot(a, c);
        self.t(c);
        self.cnot(b, c);
        self.tdg(c);
        self.cnot(a, c);
        self.t(b);
        self.t(c);
        self.h(c);
        self.cnot(a, b);
        self.t(a);
        self.tdg(b);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toffoli_uses_six_cnots() {
        let mut c = Circuit::new(3);
        c.toffoli(Qubit(0), Qubit(1), Qubit(2));
        assert_eq!(c.cnot_count(), 6);
        assert_eq!(c.gate_count(), 15);
    }

    #[test]
    fn fredkin_uses_eight_cnots() {
        let mut c = Circuit::new(3);
        c.fredkin(Qubit(0), Qubit(1), Qubit(2));
        assert_eq!(c.cnot_count(), 8);
    }

    #[test]
    fn peres_uses_five_cnots() {
        let mut c = Circuit::new(3);
        c.peres(Qubit(0), Qubit(1), Qubit(2));
        assert_eq!(c.cnot_count(), 5);
    }

    #[test]
    fn cz_uses_one_cnot() {
        let mut c = Circuit::new(2);
        c.cz(Qubit(0), Qubit(1));
        assert_eq!(c.cnot_count(), 1);
        assert_eq!(c.gate_count(), 3);
    }

    #[test]
    fn cphase_uses_two_cnots() {
        let mut c = Circuit::new(2);
        c.cphase(Qubit(0), Qubit(1), std::f64::consts::FRAC_PI_2);
        assert_eq!(c.cnot_count(), 2);
        assert_eq!(c.gate_count(), 5);
    }
}
