use crate::circuit::Circuit;
use crate::gate::GateKind;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Static statistics of a circuit: the quantities the paper's Table 2
/// reports plus a few more the compiler uses for cost estimation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CircuitStats {
    /// Number of program qubits.
    pub num_qubits: usize,
    /// Number of gates excluding measurements and barriers.
    pub gates: usize,
    /// Number of CNOT gates (SWAPs counted as three CNOTs each).
    pub cnots: usize,
    /// Number of single-qubit gates.
    pub single_qubit_gates: usize,
    /// Number of measurement operations.
    pub measurements: usize,
    /// Depth of the data-dependency DAG (number of ASAP layers).
    pub depth: usize,
    /// Number of distinct interacting qubit pairs.
    pub interaction_edges: usize,
}

impl CircuitStats {
    /// Computes statistics for `circuit`.
    pub fn from_circuit(circuit: &Circuit) -> Self {
        let mut single = 0usize;
        let mut cnots = 0usize;
        let mut measurements = 0usize;
        for g in circuit.iter() {
            match g.kind() {
                GateKind::Cnot => cnots += 1,
                GateKind::Swap => cnots += 3,
                GateKind::Measure => measurements += 1,
                GateKind::Barrier => {}
                _ => single += 1,
            }
        }
        CircuitStats {
            num_qubits: circuit.num_qubits(),
            gates: circuit.gate_count(),
            cnots,
            single_qubit_gates: single,
            measurements,
            depth: circuit.dag().depth(),
            interaction_edges: circuit.interaction_graph().num_edges(),
        }
    }
}

impl fmt::Display for CircuitStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} qubits, {} gates ({} CNOTs, {} 1q), {} measurements, depth {}",
            self.num_qubits,
            self.gates,
            self.cnots,
            self.single_qubit_gates,
            self.measurements,
            self.depth
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks::Benchmark;
    use crate::gate::Qubit;

    #[test]
    fn stats_count_each_category() {
        let mut c = Circuit::new(2);
        c.h(Qubit(0));
        c.cnot(Qubit(0), Qubit(1));
        c.measure_all();
        let s = c.stats();
        assert_eq!(s.num_qubits, 2);
        assert_eq!(s.gates, 2);
        assert_eq!(s.cnots, 1);
        assert_eq!(s.single_qubit_gates, 1);
        assert_eq!(s.measurements, 2);
        assert_eq!(s.depth, 3);
        assert_eq!(s.interaction_edges, 1);
    }

    #[test]
    fn swap_counts_as_three_cnots_in_stats() {
        let mut c = Circuit::new(2);
        c.swap(Qubit(0), Qubit(1));
        assert_eq!(c.stats().cnots, 3);
    }

    #[test]
    fn benchmark_stats_are_consistent_with_info() {
        for b in Benchmark::all() {
            let stats = b.circuit().stats();
            let info = b.info();
            assert_eq!(stats.num_qubits, info.qubits);
            assert_eq!(stats.gates, info.gates);
        }
    }

    #[test]
    fn display_mentions_depth() {
        let s = Benchmark::Bv4.circuit().stats();
        assert!(s.to_string().contains("depth"));
    }
}
