use crate::circuit::Circuit;
use crate::gate::Gate;
use std::collections::HashMap;

/// One front of simultaneously-executable gates (an ASAP level).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Layer {
    /// Indices (into the circuit's gate list) of the gates in this layer.
    pub gate_indices: Vec<usize>,
}

/// Data-dependency DAG over the gates of a [`Circuit`].
///
/// Gate `j` depends on gate `i` (edge `i -> j`) when `j` is the next gate in
/// program order that touches one of the qubits or classical bits used by
/// `i`. This is the relation the paper writes as `g2 > g1` in its scheduling
/// constraint (Constraint 3).
///
/// # Example
///
/// ```
/// use nisq_ir::{Circuit, Qubit};
///
/// let mut c = Circuit::new(2);
/// c.h(Qubit(0));
/// c.cnot(Qubit(0), Qubit(1));
/// let dag = c.dag();
/// assert_eq!(dag.predecessors(1), &[0]);
/// assert_eq!(dag.depth(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct DependencyDag {
    preds: Vec<Vec<usize>>,
    succs: Vec<Vec<usize>>,
    asap_level: Vec<usize>,
    layers: Vec<Layer>,
}

impl DependencyDag {
    /// Builds the dependency DAG of `circuit`.
    pub fn from_circuit(circuit: &Circuit) -> Self {
        let n = circuit.len();
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];

        // Last gate index that touched each qubit / clbit.
        let mut last_on_qubit: HashMap<usize, usize> = HashMap::new();
        let mut last_on_clbit: HashMap<usize, usize> = HashMap::new();

        for (i, gate) in circuit.iter().enumerate() {
            let mut gate_preds: Vec<usize> = Vec::new();
            for q in gate.qubits() {
                if let Some(&p) = last_on_qubit.get(&q.0) {
                    gate_preds.push(p);
                }
                last_on_qubit.insert(q.0, i);
            }
            for c in gate.clbits() {
                if let Some(&p) = last_on_clbit.get(&c.0) {
                    gate_preds.push(p);
                }
                last_on_clbit.insert(c.0, i);
            }
            gate_preds.sort_unstable();
            gate_preds.dedup();
            for &p in &gate_preds {
                succs[p].push(i);
            }
            preds[i] = gate_preds;
        }

        // ASAP levels: level(g) = 1 + max level over predecessors.
        let mut asap_level = vec![0usize; n];
        for i in 0..n {
            asap_level[i] = preds[i]
                .iter()
                .map(|&p| asap_level[p] + 1)
                .max()
                .unwrap_or(0);
        }
        let depth = asap_level.iter().copied().max().map_or(0, |d| d + 1);
        let mut layers: Vec<Layer> = (0..depth)
            .map(|_| Layer {
                gate_indices: Vec::new(),
            })
            .collect();
        for (i, &lvl) in asap_level.iter().enumerate() {
            layers[lvl].gate_indices.push(i);
        }

        DependencyDag {
            preds,
            succs,
            asap_level,
            layers,
        }
    }

    /// Number of gates (nodes) in the DAG.
    pub fn len(&self) -> usize {
        self.preds.len()
    }

    /// Whether the DAG has no gates.
    pub fn is_empty(&self) -> bool {
        self.preds.is_empty()
    }

    /// Direct predecessors of gate `i` (gates it depends on).
    pub fn predecessors(&self, i: usize) -> &[usize] {
        &self.preds[i]
    }

    /// Direct successors of gate `i` (gates that depend on it).
    pub fn successors(&self, i: usize) -> &[usize] {
        &self.succs[i]
    }

    /// ASAP level of gate `i` (0 for gates with no dependencies).
    pub fn level(&self, i: usize) -> usize {
        self.asap_level[i]
    }

    /// Circuit depth: number of ASAP layers.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// The ASAP layers, earliest first.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Gate indices in a valid topological order (program order is one).
    pub fn topological_order(&self) -> Vec<usize> {
        (0..self.len()).collect()
    }

    /// Length (in gate count) of the longest dependency chain ending at `i`.
    pub fn critical_path_to(&self, i: usize) -> usize {
        self.asap_level[i] + 1
    }

    /// Returns `true` if gate `j` transitively depends on gate `i`.
    pub fn depends_on(&self, j: usize, i: usize) -> bool {
        if j == i {
            return false;
        }
        // DFS backwards from j; indices only decrease along predecessor
        // edges, so this terminates quickly.
        let mut stack = vec![j];
        let mut seen = vec![false; self.len()];
        while let Some(k) = stack.pop() {
            for &p in &self.preds[k] {
                if p == i {
                    return true;
                }
                if !seen[p] && p > i {
                    seen[p] = true;
                    stack.push(p);
                }
            }
        }
        false
    }

    /// Convenience accessor pairing each gate index with the gate itself.
    pub fn gates_with_indices<'a>(
        &self,
        circuit: &'a Circuit,
    ) -> impl Iterator<Item = (usize, &'a Gate)> + 'a {
        circuit.iter().enumerate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Qubit;

    fn bell() -> Circuit {
        let mut c = Circuit::new(2);
        c.h(Qubit(0));
        c.cnot(Qubit(0), Qubit(1));
        c.measure_all();
        c
    }

    #[test]
    fn dependencies_follow_qubit_usage() {
        let dag = bell().dag();
        // gate 1 (cnot) depends on gate 0 (h on q0).
        assert_eq!(dag.predecessors(1), &[0]);
        // measurement of q0 (gate 2) depends on the cnot.
        assert_eq!(dag.predecessors(2), &[1]);
        assert_eq!(dag.predecessors(3), &[1]);
        assert_eq!(dag.successors(0), &[1]);
    }

    #[test]
    fn depth_counts_asap_layers() {
        let dag = bell().dag();
        assert_eq!(dag.depth(), 3);
        assert_eq!(dag.layers()[0].gate_indices, vec![0]);
        assert_eq!(dag.layers()[2].gate_indices, vec![2, 3]);
    }

    #[test]
    fn independent_gates_share_a_layer() {
        let mut c = Circuit::new(4);
        c.h(Qubit(0));
        c.h(Qubit(1));
        c.cnot(Qubit(0), Qubit(1));
        c.cnot(Qubit(2), Qubit(3));
        let dag = c.dag();
        assert_eq!(dag.level(0), 0);
        assert_eq!(dag.level(1), 0);
        assert_eq!(dag.level(3), 0);
        assert_eq!(dag.level(2), 1);
    }

    #[test]
    fn depends_on_is_transitive() {
        let mut c = Circuit::new(1);
        c.h(Qubit(0));
        c.x(Qubit(0));
        c.z(Qubit(0));
        let dag = c.dag();
        assert!(dag.depends_on(2, 0));
        assert!(dag.depends_on(2, 1));
        assert!(!dag.depends_on(0, 2));
        assert!(!dag.depends_on(1, 1));
    }

    #[test]
    fn empty_circuit_has_empty_dag() {
        let c = Circuit::new(3);
        let dag = c.dag();
        assert!(dag.is_empty());
        assert_eq!(dag.depth(), 0);
    }

    #[test]
    fn measurement_clbit_dependencies_are_tracked() {
        use crate::gate::{Clbit, Gate};
        let mut c = Circuit::with_clbits(2, 1);
        c.push(Gate::measure(Qubit(0), Clbit(0)));
        c.push(Gate::measure(Qubit(1), Clbit(0)));
        let dag = c.dag();
        // Second measurement writes the same classical bit, so it depends on
        // the first even though the qubits differ.
        assert_eq!(dag.predecessors(1), &[0]);
    }

    #[test]
    fn critical_path_matches_level() {
        let dag = bell().dag();
        assert_eq!(dag.critical_path_to(3), 3);
        assert_eq!(dag.critical_path_to(0), 1);
    }
}
