use crate::analysis::CircuitStats;
use crate::dag::DependencyDag;
use crate::error::IrError;
use crate::gate::{Clbit, Gate, GateKind, Qubit};
use crate::graph::InteractionGraph;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A machine-independent quantum circuit over program qubits.
///
/// This is the unit the noise-adaptive backend consumes: an ordered list of
/// gates over `num_qubits` program qubits and `num_clbits` classical bits.
/// The order of the gate list is a valid topological order of the data
/// dependencies (gates are appended in program order).
///
/// # Example
///
/// ```
/// use nisq_ir::{Circuit, Qubit};
///
/// let mut bell = Circuit::new(2);
/// bell.h(Qubit(0));
/// bell.cnot(Qubit(0), Qubit(1));
/// bell.measure_all();
/// assert_eq!(bell.len(), 4);
/// assert_eq!(bell.cnot_count(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Circuit {
    name: String,
    num_qubits: usize,
    num_clbits: usize,
    gates: Vec<Gate>,
}

impl Circuit {
    /// Creates an empty circuit with `num_qubits` qubits and the same number
    /// of classical bits.
    pub fn new(num_qubits: usize) -> Self {
        Circuit {
            name: String::from("circuit"),
            num_qubits,
            num_clbits: num_qubits,
            gates: Vec::new(),
        }
    }

    /// Creates an empty circuit with an explicit classical register size.
    pub fn with_clbits(num_qubits: usize, num_clbits: usize) -> Self {
        Circuit {
            name: String::from("circuit"),
            num_qubits,
            num_clbits,
            gates: Vec::new(),
        }
    }

    /// Sets a human-readable name (used by benchmark reporting).
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Returns the circuit name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of program qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of classical bits.
    pub fn num_clbits(&self) -> usize {
        self.num_clbits
    }

    /// The gates in program order.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Number of gates (including measurements and barriers).
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// Whether the circuit contains no gates.
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// Iterator over the gates in program order.
    pub fn iter(&self) -> std::slice::Iter<'_, Gate> {
        self.gates.iter()
    }

    /// A deterministic 64-bit content fingerprint of this circuit: name,
    /// register sizes and the full gate list (rotation angles by their
    /// IEEE-754 bits). Equal circuits always fingerprint equal, so the
    /// fingerprint is usable as a compile-cache key; it is stable within a
    /// process and across runs of the same build, but is not a
    /// serialization format.
    ///
    /// # Example
    ///
    /// ```
    /// use nisq_ir::{Circuit, Qubit};
    ///
    /// let mut a = Circuit::new(2);
    /// a.h(Qubit(0)).cnot(Qubit(0), Qubit(1));
    /// let mut b = a.clone();
    /// assert_eq!(a.fingerprint(), b.fingerprint());
    /// b.x(Qubit(1));
    /// assert_ne!(a.fingerprint(), b.fingerprint());
    /// ```
    pub fn fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = rustc_hash::FxHasher::default();
        self.name.hash(&mut h);
        self.num_qubits.hash(&mut h);
        self.num_clbits.hash(&mut h);
        for gate in &self.gates {
            gate.hash(&mut h);
        }
        h.finish()
    }

    fn check_qubit(&self, q: Qubit) -> Result<(), IrError> {
        if q.0 >= self.num_qubits {
            Err(IrError::QubitOutOfRange {
                qubit: q.0,
                num_qubits: self.num_qubits,
            })
        } else {
            Ok(())
        }
    }

    fn check_clbit(&self, c: Clbit) -> Result<(), IrError> {
        if c.0 >= self.num_clbits {
            Err(IrError::ClbitOutOfRange {
                clbit: c.0,
                num_clbits: self.num_clbits,
            })
        } else {
            Ok(())
        }
    }

    /// Appends an arbitrary gate after validating its operands.
    ///
    /// # Errors
    ///
    /// Returns an error if any operand is out of range or a two-qubit gate
    /// repeats an operand.
    pub fn try_push(&mut self, gate: Gate) -> Result<(), IrError> {
        for &q in gate.qubits() {
            self.check_qubit(q)?;
        }
        for &c in gate.clbits() {
            self.check_clbit(c)?;
        }
        if gate.is_two_qubit() && gate.qubits()[0] == gate.qubits()[1] {
            return Err(IrError::DuplicateOperand {
                qubit: gate.qubits()[0].0,
            });
        }
        self.gates.push(gate);
        Ok(())
    }

    /// Appends a gate, panicking on invalid operands.
    ///
    /// # Panics
    ///
    /// Panics if the gate references qubits or classical bits outside the
    /// circuit. Use [`Circuit::try_push`] to handle this as an error.
    pub fn push(&mut self, gate: Gate) {
        self.try_push(gate).expect("invalid gate operands");
    }

    /// Appends a Hadamard gate.
    pub fn h(&mut self, q: Qubit) -> &mut Self {
        self.push(Gate::single(GateKind::H, q));
        self
    }

    /// Appends a Pauli-X gate.
    pub fn x(&mut self, q: Qubit) -> &mut Self {
        self.push(Gate::single(GateKind::X, q));
        self
    }

    /// Appends a Pauli-Y gate.
    pub fn y(&mut self, q: Qubit) -> &mut Self {
        self.push(Gate::single(GateKind::Y, q));
        self
    }

    /// Appends a Pauli-Z gate.
    pub fn z(&mut self, q: Qubit) -> &mut Self {
        self.push(Gate::single(GateKind::Z, q));
        self
    }

    /// Appends an S gate.
    pub fn s(&mut self, q: Qubit) -> &mut Self {
        self.push(Gate::single(GateKind::S, q));
        self
    }

    /// Appends an S-dagger gate.
    pub fn sdg(&mut self, q: Qubit) -> &mut Self {
        self.push(Gate::single(GateKind::Sdg, q));
        self
    }

    /// Appends a T gate.
    pub fn t(&mut self, q: Qubit) -> &mut Self {
        self.push(Gate::single(GateKind::T, q));
        self
    }

    /// Appends a T-dagger gate.
    pub fn tdg(&mut self, q: Qubit) -> &mut Self {
        self.push(Gate::single(GateKind::Tdg, q));
        self
    }

    /// Appends an X-rotation by `angle` radians.
    pub fn rx(&mut self, q: Qubit, angle: f64) -> &mut Self {
        self.push(Gate::single(GateKind::Rx(angle), q));
        self
    }

    /// Appends a Y-rotation by `angle` radians.
    pub fn ry(&mut self, q: Qubit, angle: f64) -> &mut Self {
        self.push(Gate::single(GateKind::Ry(angle), q));
        self
    }

    /// Appends a Z-rotation by `angle` radians.
    pub fn rz(&mut self, q: Qubit, angle: f64) -> &mut Self {
        self.push(Gate::single(GateKind::Rz(angle), q));
        self
    }

    /// Appends a CNOT with the given control and target.
    pub fn cnot(&mut self, control: Qubit, target: Qubit) -> &mut Self {
        self.push(Gate::cnot(control, target));
        self
    }

    /// Appends a SWAP between two qubits.
    pub fn swap(&mut self, a: Qubit, b: Qubit) -> &mut Self {
        self.push(Gate::swap(a, b));
        self
    }

    /// Appends a measurement of `q` into classical bit `c`.
    pub fn measure(&mut self, q: Qubit, c: Clbit) -> &mut Self {
        self.push(Gate::measure(q, c));
        self
    }

    /// Appends a barrier across all qubits.
    pub fn barrier_all(&mut self) -> &mut Self {
        let qs: Vec<Qubit> = (0..self.num_qubits).map(Qubit).collect();
        self.push(Gate::barrier(qs));
        self
    }

    /// Measures every qubit `i` into classical bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if the classical register is smaller than the quantum register.
    pub fn measure_all(&mut self) -> &mut Self {
        assert!(
            self.num_clbits >= self.num_qubits,
            "measure_all requires at least as many classical bits as qubits"
        );
        for i in 0..self.num_qubits {
            self.measure(Qubit(i), Clbit(i));
        }
        self
    }

    /// Appends every gate of `other`, offsetting nothing: both circuits must
    /// use the same register sizes.
    ///
    /// # Errors
    ///
    /// Returns an error if `other` references qubits or classical bits this
    /// circuit does not have.
    pub fn extend_from(&mut self, other: &Circuit) -> Result<(), IrError> {
        for g in other.gates() {
            self.try_push(g.clone())?;
        }
        Ok(())
    }

    /// Number of CNOT gates (excluding the CNOTs hidden inside SWAPs).
    pub fn cnot_count(&self) -> usize {
        self.gates.iter().filter(|g| g.is_cnot()).count()
    }

    /// Number of two-qubit gates, counting each SWAP as three CNOTs.
    pub fn cnot_count_with_swaps(&self) -> usize {
        self.gates
            .iter()
            .map(|g| match g.kind() {
                GateKind::Cnot => 1,
                GateKind::Swap => 3,
                _ => 0,
            })
            .sum()
    }

    /// Number of measurement operations.
    pub fn measure_count(&self) -> usize {
        self.gates.iter().filter(|g| g.is_measure()).count()
    }

    /// Number of gates excluding measurements and barriers, the convention
    /// the paper's Table 2 uses for its "Gates" column.
    pub fn gate_count(&self) -> usize {
        self.gates
            .iter()
            .filter(|g| !g.is_measure() && g.kind() != GateKind::Barrier)
            .count()
    }

    /// Builds the data-dependency DAG of this circuit.
    pub fn dag(&self) -> DependencyDag {
        DependencyDag::from_circuit(self)
    }

    /// Builds the qubit interaction (program) graph of this circuit.
    pub fn interaction_graph(&self) -> InteractionGraph {
        InteractionGraph::from_circuit(self)
    }

    /// Computes summary statistics (the quantities reported in Table 2).
    pub fn stats(&self) -> CircuitStats {
        CircuitStats::from_circuit(self)
    }

    /// Returns a copy of the circuit with every SWAP expanded into its
    /// standard three-CNOT decomposition.
    pub fn expand_swaps(&self) -> Circuit {
        let mut out = Circuit::with_clbits(self.num_qubits, self.num_clbits);
        out.set_name(self.name.clone());
        for g in &self.gates {
            if g.kind() == GateKind::Swap {
                let (a, b) = (g.qubits()[0], g.qubits()[1]);
                out.cnot(a, b);
                out.cnot(b, a);
                out.cnot(a, b);
            } else {
                out.push(g.clone());
            }
        }
        out
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} ({} qubits, {} gates)",
            self.name,
            self.num_qubits,
            self.gates.len()
        )?;
        for g in &self.gates {
            writeln!(f, "  {g}")?;
        }
        Ok(())
    }
}

impl<'a> IntoIterator for &'a Circuit {
    type Item = &'a Gate;
    type IntoIter = std::slice::Iter<'a, Gate>;

    fn into_iter(self) -> Self::IntoIter {
        self.gates.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_appends_in_program_order() {
        let mut c = Circuit::new(2);
        c.h(Qubit(0)).cnot(Qubit(0), Qubit(1)).measure_all();
        assert_eq!(c.len(), 4);
        assert_eq!(c.gates()[0].kind(), GateKind::H);
        assert_eq!(c.gates()[1].kind(), GateKind::Cnot);
        assert!(c.gates()[2].is_measure());
    }

    #[test]
    fn try_push_rejects_out_of_range_qubit() {
        let mut c = Circuit::new(2);
        let err = c.try_push(Gate::cnot(Qubit(0), Qubit(5))).unwrap_err();
        assert!(matches!(err, IrError::QubitOutOfRange { qubit: 5, .. }));
        assert!(c.is_empty());
    }

    #[test]
    fn try_push_rejects_duplicate_operand() {
        let mut c = Circuit::new(3);
        let err = c.try_push(Gate::cnot(Qubit(1), Qubit(1))).unwrap_err();
        assert_eq!(err, IrError::DuplicateOperand { qubit: 1 });
    }

    #[test]
    fn try_push_rejects_out_of_range_clbit() {
        let mut c = Circuit::with_clbits(2, 1);
        let err = c.try_push(Gate::measure(Qubit(1), Clbit(1))).unwrap_err();
        assert!(matches!(err, IrError::ClbitOutOfRange { clbit: 1, .. }));
    }

    #[test]
    fn gate_count_excludes_measures_and_barriers() {
        let mut c = Circuit::new(2);
        c.h(Qubit(0))
            .cnot(Qubit(0), Qubit(1))
            .barrier_all()
            .measure_all();
        assert_eq!(c.gate_count(), 2);
        assert_eq!(c.measure_count(), 2);
        assert_eq!(c.len(), 5);
    }

    #[test]
    fn expand_swaps_produces_three_cnots() {
        let mut c = Circuit::new(2);
        c.swap(Qubit(0), Qubit(1));
        let e = c.expand_swaps();
        assert_eq!(e.cnot_count(), 3);
        assert_eq!(e.len(), 3);
        // control/target alternate as in the standard decomposition.
        assert_eq!(e.gates()[0].control(), Some(Qubit(0)));
        assert_eq!(e.gates()[1].control(), Some(Qubit(1)));
        assert_eq!(e.gates()[2].control(), Some(Qubit(0)));
    }

    #[test]
    fn cnot_count_with_swaps_counts_swap_as_three() {
        let mut c = Circuit::new(3);
        c.cnot(Qubit(0), Qubit(1)).swap(Qubit(1), Qubit(2));
        assert_eq!(c.cnot_count(), 1);
        assert_eq!(c.cnot_count_with_swaps(), 4);
    }

    #[test]
    fn extend_from_merges_gates() {
        let mut a = Circuit::new(2);
        a.h(Qubit(0));
        let mut b = Circuit::new(2);
        b.cnot(Qubit(0), Qubit(1));
        a.extend_from(&b).unwrap();
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn extend_from_rejects_larger_circuit() {
        let mut a = Circuit::new(2);
        let mut b = Circuit::new(4);
        b.h(Qubit(3));
        assert!(a.extend_from(&b).is_err());
    }

    #[test]
    fn measure_all_maps_qubit_i_to_clbit_i() {
        let mut c = Circuit::new(3);
        c.measure_all();
        for (i, g) in c.iter().enumerate() {
            assert_eq!(g.qubits()[0], Qubit(i));
            assert_eq!(g.clbits()[0], Clbit(i));
        }
    }

    #[test]
    fn display_lists_gates() {
        let mut c = Circuit::new(1);
        c.set_name("demo");
        c.h(Qubit(0));
        let s = c.to_string();
        assert!(s.contains("demo"));
        assert!(s.contains("h q0"));
    }
}
