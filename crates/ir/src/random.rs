//! Random circuit generation for the scalability study (Figure 11).
//!
//! The paper generates synthetic benchmarks "by uniformly sampling gates
//! from the universal gate set of H, X, Y, Z, S, T, CNOT" for 4-128 qubits
//! and 128-2048 gates.

use crate::circuit::Circuit;
use crate::gate::{Gate, GateKind, Qubit};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of a random synthetic benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RandomCircuitConfig {
    /// Number of program qubits (the paper sweeps 4 to 128).
    pub num_qubits: usize,
    /// Number of gates to sample (the paper sweeps 128 to 2048).
    pub num_gates: usize,
    /// RNG seed so experiments are reproducible.
    pub seed: u64,
    /// Whether to append a final measurement of every qubit.
    pub measure_all: bool,
}

impl RandomCircuitConfig {
    /// Creates a configuration with measurements enabled.
    pub fn new(num_qubits: usize, num_gates: usize, seed: u64) -> Self {
        RandomCircuitConfig {
            num_qubits,
            num_gates,
            seed,
            measure_all: true,
        }
    }
}

impl Default for RandomCircuitConfig {
    fn default() -> Self {
        RandomCircuitConfig::new(8, 128, 0)
    }
}

/// Generates a random circuit by uniformly sampling gates from
/// `{H, X, Y, Z, S, T, CNOT}`, the universal set the paper uses.
///
/// # Panics
///
/// Panics if the configuration requests fewer than two qubits (CNOTs need
/// two distinct operands).
///
/// # Example
///
/// ```
/// use nisq_ir::{random_circuit, RandomCircuitConfig};
///
/// let c = random_circuit(RandomCircuitConfig::new(8, 128, 42));
/// assert_eq!(c.num_qubits(), 8);
/// assert_eq!(c.gate_count(), 128);
/// // Same seed, same circuit.
/// assert_eq!(c, random_circuit(RandomCircuitConfig::new(8, 128, 42)));
/// ```
pub fn random_circuit(config: RandomCircuitConfig) -> Circuit {
    assert!(
        config.num_qubits >= 2,
        "random circuits need at least 2 qubits"
    );
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut c = Circuit::new(config.num_qubits);
    c.set_name(format!(
        "random-{}q-{}g-seed{}",
        config.num_qubits, config.num_gates, config.seed
    ));
    const SINGLE_KINDS: [GateKind; 6] = [
        GateKind::H,
        GateKind::X,
        GateKind::Y,
        GateKind::Z,
        GateKind::S,
        GateKind::T,
    ];
    for _ in 0..config.num_gates {
        // 7 kinds sampled uniformly; index 6 is CNOT.
        let pick = rng.gen_range(0..7usize);
        if pick < 6 {
            let q = Qubit(rng.gen_range(0..config.num_qubits));
            c.push(Gate::single(SINGLE_KINDS[pick], q));
        } else {
            let a = rng.gen_range(0..config.num_qubits);
            let mut b = rng.gen_range(0..config.num_qubits - 1);
            if b >= a {
                b += 1;
            }
            c.cnot(Qubit(a), Qubit(b));
        }
    }
    if config.measure_all {
        c.measure_all();
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_gate_count() {
        let c = random_circuit(RandomCircuitConfig::new(4, 128, 7));
        assert_eq!(c.gate_count(), 128);
        assert_eq!(c.measure_count(), 4);
    }

    #[test]
    fn is_deterministic_for_a_seed() {
        let a = random_circuit(RandomCircuitConfig::new(16, 256, 3));
        let b = random_circuit(RandomCircuitConfig::new(16, 256, 3));
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = random_circuit(RandomCircuitConfig::new(16, 256, 3));
        let b = random_circuit(RandomCircuitConfig::new(16, 256, 4));
        assert_ne!(a, b);
    }

    #[test]
    fn cnot_operands_are_distinct() {
        let c = random_circuit(RandomCircuitConfig::new(4, 512, 11));
        for g in c.iter().filter(|g| g.is_cnot()) {
            assert_ne!(g.qubits()[0], g.qubits()[1]);
        }
    }

    #[test]
    fn cnot_fraction_is_roughly_one_seventh() {
        let c = random_circuit(RandomCircuitConfig::new(32, 2048, 5));
        let frac = c.cnot_count() as f64 / 2048.0;
        assert!((frac - 1.0 / 7.0).abs() < 0.05, "fraction was {frac}");
    }

    #[test]
    fn measurements_can_be_disabled() {
        let cfg = RandomCircuitConfig {
            measure_all: false,
            ..RandomCircuitConfig::new(4, 16, 0)
        };
        assert_eq!(random_circuit(cfg).measure_count(), 0);
    }

    #[test]
    #[should_panic(expected = "at least 2 qubits")]
    fn rejects_single_qubit_configuration() {
        let _ = random_circuit(RandomCircuitConfig::new(1, 16, 0));
    }
}
