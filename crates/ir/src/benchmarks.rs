//! The twelve evaluation benchmarks of the paper (Table 2), reconstructed
//! from their standard definitions, plus the generators they are built from.
//!
//! Every benchmark has a classically-known correct output so that success
//! rate ("fraction of trials that return the correct answer") is well
//! defined, exactly as in the paper's methodology.

use crate::circuit::Circuit;
use crate::error::IrError;
use crate::gate::Qubit;
use std::f64::consts::PI;
use std::fmt;

/// The benchmark programs evaluated in the paper (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[non_exhaustive]
pub enum Benchmark {
    /// Bernstein-Vazirani on 4 qubits (3 data + 1 ancilla).
    Bv4,
    /// Bernstein-Vazirani on 6 qubits.
    Bv6,
    /// Bernstein-Vazirani on 8 qubits.
    Bv8,
    /// Hidden shift on 2 qubits.
    Hs2,
    /// Hidden shift on 4 qubits.
    Hs4,
    /// Hidden shift on 6 qubits.
    Hs6,
    /// Toffoli gate kernel (3 qubits).
    Toffoli,
    /// Fredkin (controlled-swap) kernel (3 qubits).
    Fredkin,
    /// Logical OR kernel (3 qubits).
    Or,
    /// Peres gate kernel (3 qubits).
    Peres,
    /// Two-qubit quantum Fourier transform.
    Qft,
    /// One-bit full adder (4 qubits).
    Adder,
}

/// Summary of a benchmark, matching the columns of Table 2.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkInfo {
    /// Benchmark name as printed in the paper.
    pub name: &'static str,
    /// Number of program qubits.
    pub qubits: usize,
    /// Number of gates excluding measurements.
    pub gates: usize,
    /// Number of CNOT gates.
    pub cnots: usize,
}

impl Benchmark {
    /// All twelve benchmarks in the order Table 2 lists them.
    pub fn all() -> [Benchmark; 12] {
        [
            Benchmark::Bv4,
            Benchmark::Bv6,
            Benchmark::Bv8,
            Benchmark::Hs2,
            Benchmark::Hs4,
            Benchmark::Hs6,
            Benchmark::Fredkin,
            Benchmark::Or,
            Benchmark::Peres,
            Benchmark::Toffoli,
            Benchmark::Adder,
            Benchmark::Qft,
        ]
    }

    /// The three benchmarks the paper uses for its detailed daily studies
    /// (Figures 6 and 7): BV4, HS6 and Toffoli.
    pub fn representative() -> [Benchmark; 3] {
        [Benchmark::Bv4, Benchmark::Hs6, Benchmark::Toffoli]
    }

    /// Benchmark name as used in the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            Benchmark::Bv4 => "BV4",
            Benchmark::Bv6 => "BV6",
            Benchmark::Bv8 => "BV8",
            Benchmark::Hs2 => "HS2",
            Benchmark::Hs4 => "HS4",
            Benchmark::Hs6 => "HS6",
            Benchmark::Toffoli => "Toffoli",
            Benchmark::Fredkin => "Fredkin",
            Benchmark::Or => "Or",
            Benchmark::Peres => "Peres",
            Benchmark::Qft => "QFT",
            Benchmark::Adder => "Adder",
        }
    }

    /// Builds the benchmark circuit, including final measurements of every
    /// qubit.
    pub fn circuit(&self) -> Circuit {
        let mut c = match self {
            Benchmark::Bv4 => bernstein_vazirani(&[true, true, true]),
            Benchmark::Bv6 => bernstein_vazirani(&[true, true, true, false, false]),
            Benchmark::Bv8 => bernstein_vazirani(&[true, false, true, false, true, false, false]),
            Benchmark::Hs2 => hidden_shift(2).expect("2 is a valid hidden-shift size"),
            Benchmark::Hs4 => hidden_shift(4).expect("4 is a valid hidden-shift size"),
            Benchmark::Hs6 => hidden_shift(6).expect("6 is a valid hidden-shift size"),
            Benchmark::Toffoli => toffoli_kernel(),
            Benchmark::Fredkin => fredkin_kernel(),
            Benchmark::Or => or_kernel(),
            Benchmark::Peres => peres_kernel(),
            Benchmark::Qft => qft_benchmark(2),
            Benchmark::Adder => adder_kernel(),
        };
        c.set_name(self.name());
        c
    }

    /// The classically-computed correct measurement outcome, indexed by
    /// classical bit (bit `i` is the measurement of qubit `i`).
    pub fn expected_output(&self) -> Vec<bool> {
        match self {
            Benchmark::Bv4 => vec![true, true, true, true],
            Benchmark::Bv6 => vec![true, true, true, false, false, true],
            Benchmark::Bv8 => vec![true, false, true, false, true, false, false, true],
            Benchmark::Hs2 => vec![true; 2],
            Benchmark::Hs4 => vec![true; 4],
            Benchmark::Hs6 => vec![true; 6],
            Benchmark::Toffoli => vec![true, true, true],
            Benchmark::Fredkin => vec![true, false, true],
            Benchmark::Or => vec![true, false, true],
            Benchmark::Peres => vec![true, false, true],
            Benchmark::Qft => vec![false, false],
            Benchmark::Adder => vec![true, true, true, true],
        }
    }

    /// Summary information (name, qubit, gate and CNOT counts) for this
    /// benchmark as constructed by this crate.
    pub fn info(&self) -> BenchmarkInfo {
        let c = self.circuit();
        BenchmarkInfo {
            name: self.name(),
            qubits: c.num_qubits(),
            gates: c.gate_count(),
            cnots: c.cnot_count(),
        }
    }
}

impl fmt::Display for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Bernstein-Vazirani circuit for the given hidden bit-string.
///
/// Uses one qubit per hidden bit plus one ancilla (the last qubit). The
/// correct output measures every data qubit `i` as `hidden[i]` and the
/// ancilla as 1.
pub fn bernstein_vazirani(hidden: &[bool]) -> Circuit {
    let n_data = hidden.len();
    let n = n_data + 1;
    let ancilla = Qubit(n_data);
    let mut c = Circuit::new(n);
    c.x(ancilla);
    for q in 0..n {
        c.h(Qubit(q));
    }
    for (i, &bit) in hidden.iter().enumerate() {
        if bit {
            c.cnot(Qubit(i), ancilla);
        }
    }
    for q in 0..n {
        c.h(Qubit(q));
    }
    c.measure_all();
    c
}

/// Hidden-shift circuit on `n` qubits (n must be even and positive) for the
/// Maiorana-McFarland bent function `f(x) = x_0 x_1 + x_2 x_3 + ...` and the
/// all-ones shift. The correct output is the shift, i.e. all ones.
///
/// # Errors
///
/// Returns an error if `n` is zero or odd.
pub fn hidden_shift(n: usize) -> Result<Circuit, IrError> {
    if n == 0 || !n.is_multiple_of(2) {
        return Err(IrError::InvalidBenchmarkSize {
            name: "hidden-shift",
            requested: n,
            expected: "a positive even number of qubits",
        });
    }
    let mut c = Circuit::new(n);
    let apply_h_all = |c: &mut Circuit| {
        for q in 0..n {
            c.h(Qubit(q));
        }
    };
    let apply_shift = |c: &mut Circuit| {
        for q in 0..n {
            c.x(Qubit(q));
        }
    };
    let apply_oracle = |c: &mut Circuit| {
        for p in 0..n / 2 {
            c.cz(Qubit(2 * p), Qubit(2 * p + 1));
        }
    };

    apply_h_all(&mut c);
    apply_shift(&mut c);
    apply_oracle(&mut c);
    apply_shift(&mut c);
    apply_h_all(&mut c);
    apply_oracle(&mut c);
    apply_h_all(&mut c);
    c.measure_all();
    Ok(c)
}

/// Quantum Fourier transform on `n` qubits applied to the uniform
/// superposition, so the correct output is the all-zeros string.
pub fn qft_benchmark(n: usize) -> Circuit {
    let mut c = Circuit::new(n);
    // Prepare the uniform superposition; QFT maps it back to |0...0>.
    for q in 0..n {
        c.h(Qubit(q));
    }
    append_qft(&mut c, n);
    c.measure_all();
    c
}

/// Appends the standard QFT network (Hadamards, controlled phases and the
/// final qubit-order reversal as SWAPs) on the first `n` qubits.
pub fn append_qft(c: &mut Circuit, n: usize) {
    for i in 0..n {
        c.h(Qubit(i));
        for j in (i + 1)..n {
            let angle = PI / f64::powi(2.0, (j - i) as i32);
            c.cphase(Qubit(j), Qubit(i), angle);
        }
    }
    for i in 0..n / 2 {
        c.swap(Qubit(i), Qubit(n - 1 - i));
    }
}

fn toffoli_kernel() -> Circuit {
    let mut c = Circuit::new(3);
    c.x(Qubit(0));
    c.x(Qubit(1));
    c.toffoli(Qubit(0), Qubit(1), Qubit(2));
    c.measure_all();
    c
}

fn fredkin_kernel() -> Circuit {
    let mut c = Circuit::new(3);
    c.x(Qubit(0));
    c.x(Qubit(1));
    c.fredkin(Qubit(0), Qubit(1), Qubit(2));
    c.measure_all();
    c
}

fn or_kernel() -> Circuit {
    // Computes q2 = q0 OR q1 with q0 = 1, q1 = 0.
    let mut c = Circuit::new(3);
    c.x(Qubit(0));
    // OR via De Morgan: c = NOT(AND(NOT a, NOT b)).
    c.x(Qubit(0));
    c.x(Qubit(1));
    c.toffoli(Qubit(0), Qubit(1), Qubit(2));
    c.x(Qubit(2));
    c.x(Qubit(0));
    c.x(Qubit(1));
    c.measure_all();
    c
}

fn peres_kernel() -> Circuit {
    let mut c = Circuit::new(3);
    c.x(Qubit(0));
    c.x(Qubit(1));
    c.peres(Qubit(0), Qubit(1), Qubit(2));
    c.measure_all();
    c
}

fn adder_kernel() -> Circuit {
    // One-bit full adder built from two Peres gates: qubits are
    // (a, b, cin, cout); after the circuit b holds the sum and cout the
    // carry. Inputs a = b = cin = 1, so sum = 1 and carry = 1.
    let mut c = Circuit::new(4);
    c.x(Qubit(0));
    c.x(Qubit(1));
    c.x(Qubit(2));
    c.peres(Qubit(0), Qubit(1), Qubit(3));
    c.peres(Qubit(2), Qubit(1), Qubit(3));
    c.measure_all();
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_qubit_counts_match_paper() {
        let expected = [
            (Benchmark::Bv4, 4),
            (Benchmark::Bv6, 6),
            (Benchmark::Bv8, 8),
            (Benchmark::Hs2, 2),
            (Benchmark::Hs4, 4),
            (Benchmark::Hs6, 6),
            (Benchmark::Toffoli, 3),
            (Benchmark::Fredkin, 3),
            (Benchmark::Or, 3),
            (Benchmark::Peres, 3),
            (Benchmark::Qft, 2),
            (Benchmark::Adder, 4),
        ];
        for (b, qubits) in expected {
            assert_eq!(b.circuit().num_qubits(), qubits, "{b}");
        }
    }

    #[test]
    fn table2_cnot_counts_match_paper() {
        let expected = [
            (Benchmark::Bv4, 3),
            (Benchmark::Bv6, 3),
            (Benchmark::Bv8, 3),
            (Benchmark::Hs2, 2),
            (Benchmark::Hs4, 4),
            (Benchmark::Hs6, 6),
            (Benchmark::Toffoli, 6),
            (Benchmark::Fredkin, 8),
            (Benchmark::Or, 6),
            (Benchmark::Peres, 5),
            (Benchmark::Qft, 5),
            (Benchmark::Adder, 10),
        ];
        for (b, cnots) in expected {
            assert_eq!(b.circuit().cnot_count_with_swaps(), cnots, "{b}");
        }
    }

    #[test]
    fn every_benchmark_measures_all_qubits() {
        for b in Benchmark::all() {
            let c = b.circuit();
            assert_eq!(c.measure_count(), c.num_qubits(), "{b}");
        }
    }

    #[test]
    fn expected_output_length_matches_qubit_count() {
        for b in Benchmark::all() {
            assert_eq!(b.expected_output().len(), b.circuit().num_qubits(), "{b}");
        }
    }

    #[test]
    fn bv4_has_twelve_gates_and_three_cnots() {
        let c = Benchmark::Bv4.circuit();
        assert_eq!(c.gate_count(), 12);
        assert_eq!(c.cnot_count(), 3);
    }

    #[test]
    fn qft_has_five_cnots_counting_swaps() {
        let c = Benchmark::Qft.circuit();
        assert_eq!(c.cnot_count_with_swaps(), 5);
        assert_eq!(c.expand_swaps().gate_count(), 12);
    }

    #[test]
    fn hidden_shift_rejects_odd_sizes() {
        assert!(hidden_shift(3).is_err());
        assert!(hidden_shift(0).is_err());
        assert!(hidden_shift(4).is_ok());
    }

    #[test]
    fn bv_star_interaction_graph() {
        // All CNOTs in BV hit the ancilla: the interaction graph is a star.
        let c = Benchmark::Bv4.circuit();
        let g = c.interaction_graph();
        assert_eq!(g.degree(Qubit(3)), 3);
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = Benchmark::all().iter().map(|b| b.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 12);
    }

    #[test]
    fn info_matches_circuit() {
        for b in Benchmark::all() {
            let info = b.info();
            let c = b.circuit();
            assert_eq!(info.qubits, c.num_qubits());
            assert_eq!(info.cnots, c.cnot_count());
            assert_eq!(info.gates, c.gate_count());
        }
    }

    #[test]
    fn representative_benchmarks_are_the_papers_three() {
        assert_eq!(
            Benchmark::representative(),
            [Benchmark::Bv4, Benchmark::Hs6, Benchmark::Toffoli]
        );
    }
}
