use std::error::Error;
use std::fmt;

/// Errors produced while building, validating or parsing circuits.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum IrError {
    /// A gate referenced a program qubit index outside the circuit.
    QubitOutOfRange {
        /// Offending qubit index.
        qubit: usize,
        /// Number of qubits declared by the circuit.
        num_qubits: usize,
    },
    /// A measurement referenced a classical bit outside the circuit.
    ClbitOutOfRange {
        /// Offending classical bit index.
        clbit: usize,
        /// Number of classical bits declared by the circuit.
        num_clbits: usize,
    },
    /// A two-qubit gate used the same qubit for both operands.
    DuplicateOperand {
        /// The repeated qubit index.
        qubit: usize,
    },
    /// OpenQASM source could not be parsed.
    QasmParse {
        /// 1-based line number of the failure.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
    /// A register declaration asked for more qubits/clbits than the
    /// toolchain accepts — a guard against untrusted QASM allocating
    /// unbounded memory before any simulation-size check can run.
    RegisterTooLarge {
        /// Requested register size.
        requested: usize,
        /// Maximum accepted register size.
        max: usize,
    },
    /// A requested benchmark size is not supported.
    InvalidBenchmarkSize {
        /// Name of the benchmark family.
        name: &'static str,
        /// Requested qubit count.
        requested: usize,
        /// Explanation of the accepted sizes.
        expected: &'static str,
    },
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::QubitOutOfRange { qubit, num_qubits } => write!(
                f,
                "qubit index {qubit} out of range for circuit with {num_qubits} qubits"
            ),
            IrError::ClbitOutOfRange { clbit, num_clbits } => write!(
                f,
                "classical bit index {clbit} out of range for circuit with {num_clbits} bits"
            ),
            IrError::DuplicateOperand { qubit } => {
                write!(f, "two-qubit gate uses qubit {qubit} for both operands")
            }
            IrError::QasmParse { line, message } => {
                write!(f, "OpenQASM parse error at line {line}: {message}")
            }
            IrError::RegisterTooLarge { requested, max } => write!(
                f,
                "register size {requested} exceeds the supported maximum of {max}"
            ),
            IrError::InvalidBenchmarkSize {
                name,
                requested,
                expected,
            } => write!(
                f,
                "benchmark {name} does not support {requested} qubits (expected {expected})"
            ),
        }
    }
}

impl Error for IrError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = IrError::QubitOutOfRange {
            qubit: 7,
            num_qubits: 4,
        };
        let s = e.to_string();
        assert!(s.contains('7') && s.contains('4'));
        assert!(s.starts_with("qubit index"));
    }

    #[test]
    fn qasm_error_reports_line() {
        let e = IrError::QasmParse {
            line: 12,
            message: "unknown gate foo".into(),
        };
        assert!(e.to_string().contains("line 12"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<IrError>();
    }
}
