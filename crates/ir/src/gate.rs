use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a *program* qubit (a logical qubit in the input circuit, before
/// it is mapped to a hardware location).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Qubit(pub usize);

/// Index of a classical bit holding a measurement result.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Clbit(pub usize);

impl fmt::Display for Qubit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

impl fmt::Display for Clbit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

impl From<usize> for Qubit {
    fn from(value: usize) -> Self {
        Qubit(value)
    }
}

impl From<usize> for Clbit {
    fn from(value: usize) -> Self {
        Clbit(value)
    }
}

/// The kind of a gate, independent of its operands.
///
/// The set mirrors the operations the paper's benchmarks need after ScaffCC
/// decomposition: the Clifford+T single-qubit set, arbitrary-axis rotations,
/// CNOT, SWAP (used by the router), measurement and barriers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum GateKind {
    /// Hadamard.
    H,
    /// Pauli-X (NOT).
    X,
    /// Pauli-Y.
    Y,
    /// Pauli-Z.
    Z,
    /// Phase gate S = sqrt(Z).
    S,
    /// Adjoint of S.
    Sdg,
    /// T = fourth root of Z.
    T,
    /// Adjoint of T.
    Tdg,
    /// Rotation about X by the given angle (radians).
    Rx(f64),
    /// Rotation about Y by the given angle (radians).
    Ry(f64),
    /// Rotation about Z by the given angle (radians).
    Rz(f64),
    /// Controlled-NOT; operands are `[control, target]`.
    Cnot,
    /// SWAP of two qubits; inserted by the router, decomposes into 3 CNOTs.
    Swap,
    /// Projective measurement in the computational basis.
    Measure,
    /// Scheduling barrier across its operand qubits.
    Barrier,
}

impl GateKind {
    /// Lower-case OpenQASM 2.0 mnemonic for this gate kind.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            GateKind::H => "h",
            GateKind::X => "x",
            GateKind::Y => "y",
            GateKind::Z => "z",
            GateKind::S => "s",
            GateKind::Sdg => "sdg",
            GateKind::T => "t",
            GateKind::Tdg => "tdg",
            GateKind::Rx(_) => "rx",
            GateKind::Ry(_) => "ry",
            GateKind::Rz(_) => "rz",
            GateKind::Cnot => "cx",
            GateKind::Swap => "swap",
            GateKind::Measure => "measure",
            GateKind::Barrier => "barrier",
        }
    }

    /// Hash discriminant for this kind: a small code plus the rotation
    /// angle's IEEE-754 bits for the parameterized kinds, so structurally
    /// identical kinds hash identically (used by [`crate::Circuit::fingerprint`]).
    fn hash_code(&self) -> (u8, u64) {
        match *self {
            GateKind::H => (0, 0),
            GateKind::X => (1, 0),
            GateKind::Y => (2, 0),
            GateKind::Z => (3, 0),
            GateKind::S => (4, 0),
            GateKind::Sdg => (5, 0),
            GateKind::T => (6, 0),
            GateKind::Tdg => (7, 0),
            GateKind::Rx(a) => (8, a.to_bits()),
            GateKind::Ry(a) => (9, a.to_bits()),
            GateKind::Rz(a) => (10, a.to_bits()),
            GateKind::Cnot => (11, 0),
            GateKind::Swap => (12, 0),
            GateKind::Measure => (13, 0),
            GateKind::Barrier => (14, 0),
        }
    }

    /// Whether this kind acts on exactly one qubit.
    pub fn is_single_qubit(&self) -> bool {
        matches!(
            self,
            GateKind::H
                | GateKind::X
                | GateKind::Y
                | GateKind::Z
                | GateKind::S
                | GateKind::Sdg
                | GateKind::T
                | GateKind::Tdg
                | GateKind::Rx(_)
                | GateKind::Ry(_)
                | GateKind::Rz(_)
        )
    }

    /// Whether this kind acts on exactly two qubits.
    pub fn is_two_qubit(&self) -> bool {
        matches!(self, GateKind::Cnot | GateKind::Swap)
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GateKind::Rx(a) => write!(f, "rx({a})"),
            GateKind::Ry(a) => write!(f, "ry({a})"),
            GateKind::Rz(a) => write!(f, "rz({a})"),
            other => f.write_str(other.mnemonic()),
        }
    }
}

impl std::hash::Hash for GateKind {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // Manual impl because the rotation kinds carry `f64` angles; hashing
        // the IEEE-754 bits keeps the `PartialEq`/`Hash` contract (equal
        // kinds compare equal angles, so equal bits).
        let (code, angle_bits) = self.hash_code();
        state.write_u8(code);
        state.write_u64(angle_bits);
    }
}

/// A single gate instance: a kind plus the program qubits (and classical
/// bits) it acts on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Gate {
    kind: GateKind,
    qubits: Vec<Qubit>,
    clbits: Vec<Clbit>,
}

impl Gate {
    /// Creates a single-qubit gate.
    ///
    /// # Panics
    ///
    /// Panics if `kind` is not a single-qubit kind; use the dedicated
    /// constructors for multi-qubit gates.
    pub fn single(kind: GateKind, qubit: Qubit) -> Self {
        assert!(
            kind.is_single_qubit(),
            "Gate::single called with non-single-qubit kind {kind:?}"
        );
        Gate {
            kind,
            qubits: vec![qubit],
            clbits: Vec::new(),
        }
    }

    /// Creates a CNOT gate with the given control and target.
    pub fn cnot(control: Qubit, target: Qubit) -> Self {
        Gate {
            kind: GateKind::Cnot,
            qubits: vec![control, target],
            clbits: Vec::new(),
        }
    }

    /// Creates a SWAP gate between two qubits.
    pub fn swap(a: Qubit, b: Qubit) -> Self {
        Gate {
            kind: GateKind::Swap,
            qubits: vec![a, b],
            clbits: Vec::new(),
        }
    }

    /// Creates a measurement of `qubit` into `clbit`.
    pub fn measure(qubit: Qubit, clbit: Clbit) -> Self {
        Gate {
            kind: GateKind::Measure,
            qubits: vec![qubit],
            clbits: vec![clbit],
        }
    }

    /// Creates a barrier across the given qubits.
    pub fn barrier<I: IntoIterator<Item = Qubit>>(qubits: I) -> Self {
        Gate {
            kind: GateKind::Barrier,
            qubits: qubits.into_iter().collect(),
            clbits: Vec::new(),
        }
    }

    /// The gate kind.
    pub fn kind(&self) -> GateKind {
        self.kind
    }

    /// The program qubits this gate acts on, in operand order.
    pub fn qubits(&self) -> &[Qubit] {
        &self.qubits
    }

    /// The classical bits this gate writes (non-empty only for measurements).
    pub fn clbits(&self) -> &[Clbit] {
        &self.clbits
    }

    /// Whether this gate is a CNOT.
    pub fn is_cnot(&self) -> bool {
        matches!(self.kind, GateKind::Cnot)
    }

    /// Whether this gate is a measurement.
    pub fn is_measure(&self) -> bool {
        matches!(self.kind, GateKind::Measure)
    }

    /// Whether this gate acts on a single qubit (excluding measurements and
    /// barriers).
    pub fn is_single_qubit(&self) -> bool {
        self.kind.is_single_qubit()
    }

    /// Whether this gate acts on two qubits (CNOT or SWAP).
    pub fn is_two_qubit(&self) -> bool {
        self.kind.is_two_qubit()
    }

    /// The control qubit, if this gate is a CNOT.
    pub fn control(&self) -> Option<Qubit> {
        if self.is_cnot() {
            Some(self.qubits[0])
        } else {
            None
        }
    }

    /// The target qubit, if this gate is a CNOT.
    pub fn target(&self) -> Option<Qubit> {
        if self.is_cnot() {
            Some(self.qubits[1])
        } else {
            None
        }
    }
}

impl std::hash::Hash for Gate {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.kind.hash(state);
        self.qubits.hash(state);
        self.clbits.hash(state);
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.kind)?;
        let operands: Vec<String> = self.qubits.iter().map(|q| q.to_string()).collect();
        write!(f, " {}", operands.join(", "))?;
        if let Some(c) = self.clbits.first() {
            write!(f, " -> {c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cnot_exposes_control_and_target() {
        let g = Gate::cnot(Qubit(1), Qubit(3));
        assert_eq!(g.control(), Some(Qubit(1)));
        assert_eq!(g.target(), Some(Qubit(3)));
        assert!(g.is_cnot());
        assert!(g.is_two_qubit());
        assert!(!g.is_single_qubit());
    }

    #[test]
    fn single_qubit_gate_has_one_operand() {
        let g = Gate::single(GateKind::H, Qubit(0));
        assert_eq!(g.qubits(), &[Qubit(0)]);
        assert!(g.is_single_qubit());
        assert_eq!(g.control(), None);
    }

    #[test]
    #[should_panic(expected = "non-single-qubit")]
    fn single_constructor_rejects_cnot_kind() {
        let _ = Gate::single(GateKind::Cnot, Qubit(0));
    }

    #[test]
    fn measure_records_clbit() {
        let g = Gate::measure(Qubit(2), Clbit(2));
        assert!(g.is_measure());
        assert_eq!(g.clbits(), &[Clbit(2)]);
    }

    #[test]
    fn mnemonics_match_openqasm() {
        assert_eq!(GateKind::Cnot.mnemonic(), "cx");
        assert_eq!(GateKind::Sdg.mnemonic(), "sdg");
        assert_eq!(GateKind::Rz(1.0).mnemonic(), "rz");
    }

    #[test]
    fn display_is_nonempty() {
        let g = Gate::measure(Qubit(0), Clbit(0));
        assert_eq!(g.to_string(), "measure q0 -> c0");
        let g = Gate::single(GateKind::Rz(0.5), Qubit(1));
        assert!(g.to_string().starts_with("rz(0.5)"));
    }

    #[test]
    fn barrier_collects_operands() {
        let g = Gate::barrier([Qubit(0), Qubit(1), Qubit(2)]);
        assert_eq!(g.qubits().len(), 3);
        assert_eq!(g.kind(), GateKind::Barrier);
    }
}
