use crate::circuit::Circuit;
use crate::gate::Qubit;
use std::collections::BTreeMap;

/// The qubit interaction graph (the paper's "program graph").
///
/// There is a node per program qubit and an edge between every pair of
/// qubits that share at least one CNOT. Edge weights count how many CNOTs
/// the pair shares; vertex degrees count how many CNOTs a qubit
/// participates in. The greedy heuristics (`GreedyV*`, `GreedyE*`) are
/// driven entirely by this graph.
///
/// # Example
///
/// ```
/// use nisq_ir::{Benchmark, Qubit};
///
/// let bv4 = Benchmark::Bv4.circuit();
/// let g = bv4.interaction_graph();
/// // In Bernstein-Vazirani every data qubit interacts only with the ancilla.
/// assert_eq!(g.degree(Qubit(3)), 3);
/// assert_eq!(g.edge_weight(Qubit(0), Qubit(3)), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InteractionGraph {
    num_qubits: usize,
    /// Edge weights keyed by (min qubit, max qubit).
    edges: BTreeMap<(usize, usize), usize>,
    /// Per-qubit CNOT participation count.
    degree: Vec<usize>,
}

impl InteractionGraph {
    /// Builds the interaction graph of `circuit` from its CNOT gates.
    /// SWAP gates count as three CNOTs between the same pair.
    pub fn from_circuit(circuit: &Circuit) -> Self {
        let mut edges: BTreeMap<(usize, usize), usize> = BTreeMap::new();
        let mut degree = vec![0usize; circuit.num_qubits()];
        for gate in circuit.iter() {
            let weight = match gate.kind() {
                crate::gate::GateKind::Cnot => 1,
                crate::gate::GateKind::Swap => 3,
                _ => continue,
            };
            let a = gate.qubits()[0].0;
            let b = gate.qubits()[1].0;
            let key = (a.min(b), a.max(b));
            *edges.entry(key).or_insert(0) += weight;
            degree[a] += weight;
            degree[b] += weight;
        }
        InteractionGraph {
            num_qubits: circuit.num_qubits(),
            edges,
            degree,
        }
    }

    /// Number of program qubits (nodes).
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of distinct interacting pairs (edges).
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// CNOT participation count of `q` (0 if the qubit never appears in a
    /// CNOT).
    pub fn degree(&self, q: Qubit) -> usize {
        self.degree.get(q.0).copied().unwrap_or(0)
    }

    /// Number of CNOTs between `a` and `b` (0 if they never interact).
    pub fn edge_weight(&self, a: Qubit, b: Qubit) -> usize {
        let key = (a.0.min(b.0), a.0.max(b.0));
        self.edges.get(&key).copied().unwrap_or(0)
    }

    /// All edges as `(qubit, qubit, weight)` triples in unspecified order.
    pub fn edges(&self) -> impl Iterator<Item = (Qubit, Qubit, usize)> + '_ {
        self.edges
            .iter()
            .map(|(&(a, b), &w)| (Qubit(a), Qubit(b), w))
    }

    /// Edges sorted by descending weight (ties broken by qubit indices),
    /// the order `GreedyE*` consumes them in.
    pub fn edges_by_weight(&self) -> Vec<(Qubit, Qubit, usize)> {
        let mut v: Vec<(Qubit, Qubit, usize)> = self.edges().collect();
        v.sort_by(|x, y| y.2.cmp(&x.2).then(x.0.cmp(&y.0)).then(x.1.cmp(&y.1)));
        v
    }

    /// Qubits sorted by descending degree (ties broken by index), the order
    /// `GreedyV*` consumes them in.
    pub fn qubits_by_degree(&self) -> Vec<Qubit> {
        let mut v: Vec<usize> = (0..self.num_qubits).collect();
        v.sort_by(|&a, &b| self.degree[b].cmp(&self.degree[a]).then(a.cmp(&b)));
        v.into_iter().map(Qubit).collect()
    }

    /// Neighbours of `q`: qubits sharing at least one CNOT with it.
    pub fn neighbors(&self, q: Qubit) -> Vec<Qubit> {
        let mut out = Vec::new();
        for &(a, b) in self.edges.keys() {
            if a == q.0 {
                out.push(Qubit(b));
            } else if b == q.0 {
                out.push(Qubit(a));
            }
        }
        out
    }

    /// Total CNOT count across all edges.
    pub fn total_weight(&self) -> usize {
        self.edges.values().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Circuit;

    fn star4() -> Circuit {
        // 3 CNOTs all targeting qubit 3 (a BV-like star).
        let mut c = Circuit::new(4);
        c.cnot(Qubit(0), Qubit(3));
        c.cnot(Qubit(1), Qubit(3));
        c.cnot(Qubit(2), Qubit(3));
        c
    }

    #[test]
    fn degrees_count_cnot_participation() {
        let g = star4().interaction_graph();
        assert_eq!(g.degree(Qubit(3)), 3);
        assert_eq!(g.degree(Qubit(0)), 1);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.total_weight(), 3);
    }

    #[test]
    fn edge_weight_is_symmetric() {
        let mut c = Circuit::new(2);
        c.cnot(Qubit(0), Qubit(1));
        c.cnot(Qubit(1), Qubit(0));
        let g = c.interaction_graph();
        assert_eq!(g.edge_weight(Qubit(0), Qubit(1)), 2);
        assert_eq!(g.edge_weight(Qubit(1), Qubit(0)), 2);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn qubits_by_degree_puts_hub_first() {
        let g = star4().interaction_graph();
        assert_eq!(g.qubits_by_degree()[0], Qubit(3));
    }

    #[test]
    fn edges_by_weight_sorts_descending() {
        let mut c = Circuit::new(3);
        c.cnot(Qubit(0), Qubit(1));
        c.cnot(Qubit(1), Qubit(2));
        c.cnot(Qubit(1), Qubit(2));
        let g = c.interaction_graph();
        let edges = g.edges_by_weight();
        assert_eq!(edges[0], (Qubit(1), Qubit(2), 2));
        assert_eq!(edges[1], (Qubit(0), Qubit(1), 1));
    }

    #[test]
    fn swap_counts_as_three_cnots() {
        let mut c = Circuit::new(2);
        c.swap(Qubit(0), Qubit(1));
        let g = c.interaction_graph();
        assert_eq!(g.edge_weight(Qubit(0), Qubit(1)), 3);
        assert_eq!(g.degree(Qubit(0)), 3);
    }

    #[test]
    fn neighbors_lists_interacting_qubits() {
        let g = star4().interaction_graph();
        let mut n = g.neighbors(Qubit(3));
        n.sort();
        assert_eq!(n, vec![Qubit(0), Qubit(1), Qubit(2)]);
        assert_eq!(g.neighbors(Qubit(0)), vec![Qubit(3)]);
    }

    #[test]
    fn non_interacting_qubit_has_zero_degree() {
        let mut c = Circuit::new(3);
        c.cnot(Qubit(0), Qubit(1));
        c.h(Qubit(2));
        let g = c.interaction_graph();
        assert_eq!(g.degree(Qubit(2)), 0);
        assert_eq!(g.edge_weight(Qubit(0), Qubit(2)), 0);
    }
}
