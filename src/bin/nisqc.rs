//! `nisqc` — command-line front end for the noise-adaptive compiler.
//!
//! Reads an OpenQASM 2.0 program, compiles it for a calibrated machine with
//! one of the paper's mapping algorithms, prints a compilation report, and
//! optionally writes the hardware executable and measures its simulated
//! success rate.
//!
//! ```text
//! Usage: nisqc <input.qasm> [options]
//!        nisqc --benchmark BV4 [options]
//!        nisqc sweep [sweep options]
//!        nisqc sweep --validate report.json [--expect-cells N]
//!        nisqc serve [serve options]
//!
//! Options:
//!   --mapper <name>    qiskit | t-smt | t-smt-star | r-smt-star |
//!                      greedy-v | greedy-e              (default: r-smt-star)
//!   --omega <w>        readout weight for r-smt-star    (default: 0.5)
//!   --day <d>          calibration day index            (default: 0)
//!   --seed <s>         machine calibration seed         (default: 2019)
//!   --trials <n>       simulate n noisy trials          (default: 0 = skip)
//!   --expected <bits>  correct answer, e.g. 1101, for success-rate reporting
//!   --output <path>    write the compiled OpenQASM here
//!
//! Sweep options (execute a declarative plan, emit a JSON report):
//!   --benchmarks <l>   comma list of Table-2 names, "all", "representative"
//!                      or "none" (with --qasm)          (default: representative)
//!   --qasm <path>      add a custom OpenQASM circuit to the plan (repeatable)
//!   --mappers <l>      comma list of mapper names or "table1"
//!                                                       (default: r-smt-star)
//!   --omega <w>        readout weight for r-smt-star    (default: 0.5)
//!   --days <l>         comma list and/or a..b ranges    (default: 0)
//!   --topology <t>     ibmq16 | grid-MxN | ring-N | heavy-hex-RxC
//!                                                       (default: ibmq16)
//!   --trials <n>       noisy trials per cell            (default: 0 = compile only)
//!   --noise <path>     add a JSON noise spec as a sweep-axis point
//!                      (repeatable; cells multiply)     (default: calibration noise only)
//!   --machine-seed <s> machine calibration seed         (default: 2019)
//!   --sim-seed <s>     fixed simulation seed            (default: per-cell seeds)
//!   --journal <path>   stream finished cells to a fresh crash-safe journal
//!   --resume <path>    resume from an existing journal: completed cells load
//!                      without recomputation, new cells keep appending
//!   --reuse <path>     absorb completed cells from another run's journal into
//!                      this run's journal (requires --journal or --resume);
//!                      matching is purely by cell fingerprint
//!   --canonicalize <p> print a report's canonical single-line JSON
//!                      (runtime provenance zeroed) for byte-wise comparison
//!   --output <path>    write the JSON report here       (default: stdout)
//!   --validate <path>  parse an emitted report instead of running a sweep
//!   --expect-cells <n> require exactly n cells (after a sweep or --validate)
//!
//! Serve options (run the persistent compile-and-simulate daemon):
//!   --listen <addr>    TCP listen address               (default: 127.0.0.1:7878)
//!   --unix <path>      listen on a Unix socket instead of TCP
//!   --queue <n>        per-client work-queue capacity   (default: 32)
//!   --timeout-ms <n>   per-request wall-clock budget    (default: 30000)
//!   --max-cells <n>    largest plan a request may send  (default: 4096)
//!   --max-trials <n>   largest per-cell trial count     (default: 65536)
//!   --max-qubits <n>   largest machine a request builds (default: 256)
//!   --threads <n>      session worker threads           (default: auto)
//!   --journal-dir <d>  accept journaled requests; per-request journals are
//!                      kept here, keyed by the request's resume_key
//!   --workers <n>      run n process-isolated worker shards behind a
//!                      supervisor (0 = single-process)   (default: 0)
//!   --runtime-dir <d>  directory for the shards' private Unix sockets
//!                      (default: a per-process tmp dir)
//!   --compact-threshold <n>  auto-compact a request's journal once it holds
//!                      n dead records (0 = never)        (default: 64)
//!
//! Journal maintenance (inspect and compact sweep journals):
//!   nisqc journal inspect <path>   summarize a journal: schema, record and
//!                      cell counts, orphan intents, dead records, torn tail.
//!                      Exits nonzero for corrupt or torn journals.
//!   nisqc journal compact <path>   rewrite the journal keeping only the
//!                      last write per cell (atomic tmp + rename)
//! ```

use nisq::exp::names::{config_for, parse_benchmarks, parse_days, parse_mappers, parse_topology};
use nisq::prelude::*;
use nisq::serve::{Endpoint, Server, ServerConfig, Supervisor, SupervisorConfig};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

struct Options {
    input: Input,
    mapper: String,
    omega: f64,
    day: usize,
    seed: u64,
    trials: u32,
    expected: Option<Vec<bool>>,
    output: Option<String>,
}

enum Input {
    QasmFile(String),
    Benchmark(Benchmark),
}

fn usage() -> String {
    "usage: nisqc <input.qasm> [--mapper NAME] [--omega W] [--day D] [--seed S] \
     [--trials N] [--expected BITS] [--output PATH]\n       nisqc --benchmark NAME [...]"
        .to_string()
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut input: Option<Input> = None;
    let mut options = Options {
        input: Input::Benchmark(Benchmark::Bv4),
        mapper: "r-smt-star".to_string(),
        omega: 0.5,
        day: 0,
        seed: 2019,
        trials: 0,
        expected: None,
        output: None,
    };

    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        let take_value = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            args.get(*i)
                .cloned()
                .ok_or_else(|| format!("missing value for {arg}"))
        };
        match arg.as_str() {
            "--mapper" => options.mapper = take_value(&mut i)?,
            "--omega" => {
                options.omega = take_value(&mut i)?
                    .parse()
                    .map_err(|_| "omega must be a number".to_string())?
            }
            "--day" => {
                options.day = take_value(&mut i)?
                    .parse()
                    .map_err(|_| "day must be an integer".to_string())?
            }
            "--seed" => {
                options.seed = take_value(&mut i)?
                    .parse()
                    .map_err(|_| "seed must be an integer".to_string())?
            }
            "--trials" => {
                options.trials = take_value(&mut i)?
                    .parse()
                    .map_err(|_| "trials must be an integer".to_string())?
            }
            "--expected" => {
                let bits = take_value(&mut i)?;
                let parsed: Result<Vec<bool>, String> = bits
                    .chars()
                    .map(|c| match c {
                        '0' => Ok(false),
                        '1' => Ok(true),
                        other => Err(format!("invalid bit '{other}' in --expected")),
                    })
                    .collect();
                options.expected = Some(parsed?);
            }
            "--output" => options.output = Some(take_value(&mut i)?),
            "--benchmark" => {
                let name = take_value(&mut i)?;
                let benchmark = Benchmark::all()
                    .into_iter()
                    .find(|b| b.name().eq_ignore_ascii_case(&name))
                    .ok_or_else(|| format!("unknown benchmark {name}"))?;
                input = Some(Input::Benchmark(benchmark));
            }
            "--help" | "-h" => return Err(usage()),
            other if !other.starts_with("--") => {
                input = Some(Input::QasmFile(other.to_string()));
            }
            other => return Err(format!("unknown option {other}\n{}", usage())),
        }
        i += 1;
    }

    options.input = input.ok_or_else(usage)?;
    Ok(options)
}

fn run(options: &Options) -> Result<(), String> {
    let (circuit, default_expected) = match &options.input {
        Input::QasmFile(path) => {
            let source =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            let mut circuit =
                nisq::ir::qasm::parse(&source).map_err(|e| format!("cannot parse {path}: {e}"))?;
            circuit.set_name(path.clone());
            (circuit, None)
        }
        Input::Benchmark(benchmark) => (benchmark.circuit(), Some(benchmark.expected_output())),
    };

    let machine = Machine::ibmq16_on_day(options.seed, options.day);
    let config = config_for(&options.mapper, options.omega)?;
    let compiled = Compiler::new(&machine, config)
        .compile(&circuit)
        .map_err(|e| format!("compilation failed: {e}"))?;

    println!("program        : {}", compiled.program_name());
    println!("machine        : {machine}");
    println!("mapper         : {config}");
    println!("placement      : {:?}", compiled.placement().as_slice());
    println!("swaps inserted : {}", compiled.swap_count());
    println!("hardware CNOTs : {}", compiled.hardware_cnot_count());
    println!("duration       : {} timeslots", compiled.duration_slots());
    println!("est. reliability: {:.4}", compiled.estimated_reliability());
    println!("within coherence: {}", compiled.within_coherence());
    println!(
        "compile time   : {:.2} ms",
        compiled.compile_time().as_secs_f64() * 1000.0
    );

    if options.trials > 0 {
        let expected = options.expected.clone().or(default_expected);
        match expected {
            Some(expected) => {
                let simulator =
                    Simulator::new(&machine, SimulatorConfig::with_trials(options.trials, 1));
                let success = simulator.success_rate(&compiled, &expected);
                println!(
                    "success rate   : {success:.4} over {} noisy trials",
                    options.trials
                );
            }
            None => println!(
                "success rate   : skipped (pass --expected BITS to define the correct answer)"
            ),
        }
    }

    match &options.output {
        Some(path) => {
            std::fs::write(path, compiled.qasm())
                .map_err(|e| format!("cannot write {path}: {e}"))?;
            println!("wrote executable to {path}");
        }
        None => {
            println!("\n--- compiled OpenQASM ---");
            print!("{}", compiled.qasm());
        }
    }
    Ok(())
}

/// Loads a custom OpenQASM circuit into a plan-ready spec. Malformed
/// files surface the parser's typed diagnosis; nothing panics.
fn load_qasm_circuit(path: &str) -> Result<CircuitSpec, String> {
    let source = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let circuit =
        nisq::ir::qasm::parse(&source).map_err(|e| format!("cannot parse {path}: {e}"))?;
    Ok(CircuitSpec::new(path.to_string(), circuit))
}

/// Loads and validates a declarative noise spec. Parse and CPTP failures
/// surface the noise crate's typed diagnosis; nothing panics.
fn load_noise_spec(path: &str) -> Result<NoiseSpec, String> {
    let source = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    NoiseSpec::from_json(&source).map_err(|e| format!("invalid noise spec {path}: {e}"))
}

/// Runs the `sweep` subcommand: execute a plan and emit JSON, or validate
/// an emitted report (`--validate`).
fn run_sweep(args: &[String]) -> Result<(), String> {
    let mut benchmarks = "representative".to_string();
    let mut qasm_files: Vec<String> = Vec::new();
    let mut noise_files: Vec<String> = Vec::new();
    let mut mappers = "r-smt-star".to_string();
    let mut omega = 0.5;
    let mut days = vec![0usize];
    let mut topology = TopologySpec::Ibmq16;
    let mut trials = 0u32;
    let mut machine_seed = nisq::exp::DEFAULT_MACHINE_SEED;
    let mut sim_seed: Option<u64> = None;
    let mut output: Option<String> = None;
    let mut validate: Option<String> = None;
    let mut canonicalize: Option<String> = None;
    let mut expect_cells: Option<usize> = None;
    let mut journal_new: Option<String> = None;
    let mut journal_resume: Option<String> = None;
    let mut journal_reuse: Option<String> = None;

    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        let take_value = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            args.get(*i)
                .cloned()
                .ok_or_else(|| format!("missing value for {arg}"))
        };
        let parse = |text: String, what: &str| -> Result<u64, String> {
            text.parse()
                .map_err(|_| format!("{what} must be an integer"))
        };
        match arg.as_str() {
            "--benchmarks" => benchmarks = take_value(&mut i)?,
            "--qasm" => qasm_files.push(take_value(&mut i)?),
            "--mappers" => mappers = take_value(&mut i)?,
            "--omega" => {
                omega = take_value(&mut i)?
                    .parse()
                    .map_err(|_| "omega must be a number".to_string())?
            }
            "--days" => days = parse_days(&take_value(&mut i)?)?,
            "--topology" => topology = parse_topology(&take_value(&mut i)?)?,
            "--trials" => {
                trials = u32::try_from(parse(take_value(&mut i)?, "trials")?)
                    .map_err(|_| format!("trials must be at most {}", u32::MAX))?
            }
            "--noise" => noise_files.push(take_value(&mut i)?),
            "--machine-seed" => machine_seed = parse(take_value(&mut i)?, "machine-seed")?,
            "--sim-seed" => sim_seed = Some(parse(take_value(&mut i)?, "sim-seed")?),
            "--output" => output = Some(take_value(&mut i)?),
            "--validate" => validate = Some(take_value(&mut i)?),
            "--canonicalize" => canonicalize = Some(take_value(&mut i)?),
            "--expect-cells" => {
                expect_cells = Some(parse(take_value(&mut i)?, "expect-cells")? as usize)
            }
            "--journal" => journal_new = Some(take_value(&mut i)?),
            "--resume" => journal_resume = Some(take_value(&mut i)?),
            "--reuse" => journal_reuse = Some(take_value(&mut i)?),
            other => return Err(format!("unknown sweep option {other}\n{}", usage())),
        }
        i += 1;
    }

    if journal_new.is_some() && journal_resume.is_some() {
        return Err(
            "--journal and --resume are mutually exclusive (--journal starts fresh, \
             --resume continues an existing journal)"
                .to_string(),
        );
    }
    if journal_reuse.is_some() && journal_new.is_none() && journal_resume.is_none() {
        return Err(
            "--reuse needs a journal of its own to absorb into (pass --journal or --resume)"
                .to_string(),
        );
    }

    if let Some(path) = canonicalize {
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let report = Report::from_json(&text).map_err(|e| format!("invalid report: {e}"))?;
        let line = report.to_json_line_canonical();
        match output {
            Some(out) => std::fs::write(&out, format!("{line}\n"))
                .map_err(|e| format!("cannot write {out}: {e}"))?,
            None => println!("{line}"),
        }
        return Ok(());
    }

    if let Some(path) = validate {
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let report = Report::from_json(&text).map_err(|e| format!("invalid report: {e}"))?;
        if let Some(expected) = expect_cells {
            if report.cells.len() != expected {
                return Err(format!(
                    "expected {expected} cells, report has {}",
                    report.cells.len()
                ));
            }
        }
        // Backend occupancy: how many simulated cells each state backend
        // served (a cell's tag is pure; only run totals can be mixed).
        let simulated = report.cells.iter().filter(|c| c.tiers.total() > 0);
        let (mut dense_cells, mut tableau_cells) = (0usize, 0usize);
        for cell in simulated {
            match cell.tiers.backend {
                nisq_exp::BackendTag::Tableau => tableau_cells += 1,
                _ => dense_cells += 1,
            }
        }
        println!(
            "{path}: valid report ({} cells, {} compiles, {} compile hits, {} placement passes; \
             tiers {} error-free / {} pauli-prop / {} checkpointed / {} full, memo {}/{} hits; \
             backends {} dense / {} tableau cells)",
            report.cells.len(),
            report.cache.compile_requests,
            report.cache.compile_hits,
            report.cache.place_runs,
            report.tiers.error_free,
            report.tiers.pauli_prop,
            report.tiers.checkpointed,
            report.tiers.full_replay,
            report.tiers.memo_hits,
            report.tiers.memo_hits + report.tiers.memo_misses,
            dense_cells,
            tableau_cells,
        );
        return Ok(());
    }

    let mut plan = SweepPlan::new()
        .benchmarks(parse_benchmarks(&benchmarks)?)
        .with_configs(parse_mappers(&mappers, omega)?)
        .days(days)
        .topology(topology)
        .with_machine_seed(machine_seed)
        .with_trials(trials);
    for path in &qasm_files {
        plan = plan.circuit(load_qasm_circuit(path)?);
    }
    for path in &noise_files {
        let spec = load_noise_spec(path)?;
        plan = plan.with_noise(spec.name().to_string(), spec);
    }
    if plan.circuits().is_empty() {
        return Err("the plan selects no circuits (pass --benchmarks or --qasm)".to_string());
    }
    if let Some(seed) = sim_seed {
        plan = plan.fixed_sim_seed(seed);
    }

    let mut session = Session::new();
    let mut journal = match (&journal_new, &journal_resume) {
        (Some(path), None) => Some(
            Journal::create(
                std::path::Path::new(path),
                plan.machine_seed(),
                plan.trials(),
            )
            .map_err(|e| format!("cannot start journal: {e}"))?,
        ),
        (None, Some(path)) => {
            let journal = Journal::resume(
                std::path::Path::new(path),
                plan.machine_seed(),
                plan.trials(),
            )
            .map_err(|e| format!("cannot resume journal: {e}"))?;
            let recovery = journal.recovery();
            if recovery.truncated_bytes > 0 {
                eprintln!(
                    "warning: {path}: truncated {} trailing bytes (torn or corrupt record); \
                     the cells before them were recovered intact",
                    recovery.truncated_bytes
                );
            }
            if recovery.orphan_intents > 0 {
                eprintln!(
                    "note: {path}: {} cell(s) were in flight at the crash and will be re-run",
                    recovery.orphan_intents
                );
            }
            eprintln!(
                "resuming from {path}: {} completed cell(s) on record",
                journal.completed_cells()
            );
            Some(journal)
        }
        _ => None,
    };
    if let (Some(journal), Some(path)) = (journal.as_mut(), &journal_reuse) {
        let absorbed = journal
            .absorb(std::path::Path::new(path))
            .map_err(|e| format!("cannot reuse {path}: {e}"))?;
        eprintln!("reuse: absorbed {absorbed} completed cell(s) from {path}");
    }
    let report = match journal.as_mut() {
        Some(journal) => session
            .run_journaled(&plan, &RunControl::unbounded(), journal)
            .map(|outcome| outcome.report),
        None => session.run(&plan),
    }
    .map_err(|e| format!("sweep failed: {e}"))?;
    if let Some(reason) = journal.as_ref().and_then(|j| j.degraded()) {
        eprintln!(
            "warning: journal degraded ({reason}); the report is complete but later \
             cells were not journaled"
        );
    }
    if report.resumed_cells > 0 {
        eprintln!(
            "journal: {} of {} cell(s) resumed without recomputation",
            report.resumed_cells,
            report.cells.len()
        );
    }
    if let Some(expected) = expect_cells {
        if report.cells.len() != expected {
            return Err(format!(
                "expected {expected} cells, sweep produced {}",
                report.cells.len()
            ));
        }
    }
    let json = report.to_json();
    match output {
        Some(path) => {
            std::fs::write(&path, &json).map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!(
                "wrote {path} ({} cells, {} compile hits, {} placement passes over {} compiles)",
                report.cells.len(),
                report.cache.compile_hits,
                report.cache.place_runs,
                report.cache.compile_requests,
            );
        }
        None => print!("{json}"),
    }
    Ok(())
}

/// Runs the `serve` subcommand: bind the daemon and serve until SIGINT,
/// SIGTERM or a `shutdown` request drains it.
fn run_serve(args: &[String]) -> Result<(), String> {
    let mut endpoint = Endpoint::Tcp("127.0.0.1:7878".to_string());
    let mut config = ServerConfig::default();
    let mut workers = 0usize;
    let mut runtime_dir: Option<PathBuf> = None;

    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        let take_value = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            args.get(*i)
                .cloned()
                .ok_or_else(|| format!("missing value for {arg}"))
        };
        let parse = |text: String, what: &str| -> Result<u64, String> {
            text.parse()
                .map_err(|_| format!("{what} must be an integer"))
        };
        match arg.as_str() {
            "--listen" => endpoint = Endpoint::Tcp(take_value(&mut i)?),
            "--unix" => endpoint = Endpoint::Unix(take_value(&mut i)?.into()),
            "--queue" => config.queue_capacity = parse(take_value(&mut i)?, "queue")? as usize,
            "--timeout-ms" => {
                config.request_timeout =
                    Duration::from_millis(parse(take_value(&mut i)?, "timeout-ms")?)
            }
            "--max-cells" => config.max_cells = parse(take_value(&mut i)?, "max-cells")? as usize,
            "--max-trials" => {
                config.max_trials = u32::try_from(parse(take_value(&mut i)?, "max-trials")?)
                    .map_err(|_| format!("max-trials must be at most {}", u32::MAX))?
            }
            "--max-qubits" => {
                config.max_machine_qubits = parse(take_value(&mut i)?, "max-qubits")? as usize
            }
            "--threads" => config.threads = parse(take_value(&mut i)?, "threads")? as usize,
            "--journal-dir" => config.journal_dir = Some(take_value(&mut i)?.into()),
            "--workers" => workers = parse(take_value(&mut i)?, "workers")? as usize,
            "--runtime-dir" => runtime_dir = Some(take_value(&mut i)?.into()),
            "--compact-threshold" => {
                config.journal_compact_threshold =
                    parse(take_value(&mut i)?, "compact-threshold")? as usize
            }
            other => return Err(format!("unknown serve option {other}\n{}", usage())),
        }
        i += 1;
    }

    nisq::serve::signal::install();
    if workers > 0 {
        return run_supervised(&endpoint, config, workers, runtime_dir);
    }
    let server = Server::bind(&endpoint, config).map_err(|e| format!("cannot bind: {e}"))?;
    match (&endpoint, server.local_addr()) {
        (_, Some(addr)) => eprintln!("nisqc serve: listening on tcp://{addr}"),
        (Endpoint::Unix(path), None) => {
            eprintln!("nisqc serve: listening on unix://{}", path.display())
        }
        _ => {}
    }
    server.run().map_err(|e| format!("serve failed: {e}"))?;
    eprintln!("nisqc serve: drained and shut down");
    Ok(())
}

/// The argument vector a supervised worker is launched with: `serve` on a
/// private socket, with every front-door limit mirrored so supervisor and
/// shard enforce identical admission.
fn worker_serve_args(config: &ServerConfig) -> Vec<String> {
    let mut args: Vec<String> = [
        "serve",
        "--unix",
        "{socket}",
        "--queue",
        &config.queue_capacity.to_string(),
        "--timeout-ms",
        &config.request_timeout.as_millis().to_string(),
        "--max-cells",
        &config.max_cells.to_string(),
        "--max-trials",
        &config.max_trials.to_string(),
        "--max-qubits",
        &config.max_machine_qubits.to_string(),
        "--threads",
        &config.threads.to_string(),
        "--compact-threshold",
        &config.journal_compact_threshold.to_string(),
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    if let Some(dir) = &config.journal_dir {
        args.push("--journal-dir".to_string());
        args.push(dir.display().to_string());
    }
    args
}

/// Runs `serve --workers N`: a supervisor routing to N process-isolated
/// worker shards, each a `nisqc serve --unix` child of this process.
fn run_supervised(
    endpoint: &Endpoint,
    config: ServerConfig,
    workers: usize,
    runtime_dir: Option<PathBuf>,
) -> Result<(), String> {
    let exe = std::env::current_exe().map_err(|e| format!("cannot find own executable: {e}"))?;
    let runtime_dir = runtime_dir.unwrap_or_else(|| {
        std::env::temp_dir().join(format!("nisqc-serve-{}", std::process::id()))
    });
    let mut sup = SupervisorConfig::new(workers, config.clone(), runtime_dir, exe);
    sup.spec.args = worker_serve_args(&config);
    let supervisor =
        Supervisor::bind(endpoint, sup).map_err(|e| format!("cannot start workers: {e}"))?;
    match (endpoint, supervisor.local_addr()) {
        (_, Some(addr)) => {
            eprintln!("nisqc serve: supervising {workers} workers on tcp://{addr}")
        }
        (Endpoint::Unix(path), None) => eprintln!(
            "nisqc serve: supervising {workers} workers on unix://{}",
            path.display()
        ),
        _ => {}
    }
    supervisor.run().map_err(|e| format!("serve failed: {e}"))?;
    eprintln!("nisqc serve: workers stopped, supervisor shut down");
    Ok(())
}

/// Runs the `journal` subcommand: read-only inspection or last-write-wins
/// compaction of a sweep journal.
fn run_journal(args: &[String]) -> Result<(), String> {
    let journal_usage = "usage: nisqc journal inspect <path>\n       nisqc journal compact <path>";
    let (verb, path) = match (args.first(), args.get(1)) {
        (Some(verb), Some(path)) if args.len() == 2 => (verb.as_str(), path.as_str()),
        _ => return Err(journal_usage.to_string()),
    };
    match verb {
        "inspect" => {
            let info =
                Journal::inspect(std::path::Path::new(path)).map_err(|e| format!("{path}: {e}"))?;
            let header = |v: Option<u64>| v.map_or("?".to_string(), |v| v.to_string());
            println!("{path}: nisq sweep journal");
            println!(
                "  header        : machine_seed {}, trials {}",
                header(info.machine_seed),
                header(info.trials)
            );
            println!(
                "  records       : {} ({} cells, {} intents) in {} bytes",
                info.records, info.cell_records, info.intent_records, info.file_bytes
            );
            println!("  unique cells  : {}", info.unique_cells);
            println!(
                "  dead records  : {} (superseded duplicates and completed intents)",
                info.dead_records
            );
            println!("  orphan intents: {}", info.orphan_intents);
            match info.torn_tail_offset {
                None => println!("  tail          : clean"),
                Some(offset) => println!(
                    "  tail          : TORN at byte {offset} ({} trailing bytes would be \
                     truncated on resume)",
                    info.file_bytes - offset
                ),
            }
            if info.torn_tail_offset.is_some() {
                return Err(format!(
                    "{path}: journal has a torn or corrupt tail (resume would recover, \
                     truncating it)"
                ));
            }
            Ok(())
        }
        "compact" => {
            let info =
                Journal::compact(std::path::Path::new(path)).map_err(|e| format!("{path}: {e}"))?;
            println!(
                "{path}: kept {} cell(s), dropped {} dead record(s), {} -> {} bytes",
                info.kept_cells, info.dropped_records, info.bytes_before, info.bytes_after
            );
            Ok(())
        }
        other => Err(format!("unknown journal verb {other:?}\n{journal_usage}")),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let subcommand = |body: fn(&[String]) -> Result<(), String>, args: &[String]| match body(args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    };
    if args.first().map(String::as_str) == Some("sweep") {
        return subcommand(run_sweep, &args[1..]);
    }
    if args.first().map(String::as_str) == Some("serve") {
        return subcommand(run_serve, &args[1..]);
    }
    if args.first().map(String::as_str) == Some("journal") {
        return subcommand(run_journal, &args[1..]);
    }
    let options = match parse_args(&args) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    match run(&options) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_benchmark_input_with_options() {
        let o = parse_args(&args(&[
            "--benchmark",
            "Toffoli",
            "--mapper",
            "greedy-e",
            "--trials",
            "128",
            "--day",
            "3",
        ]))
        .unwrap();
        assert!(matches!(o.input, Input::Benchmark(Benchmark::Toffoli)));
        assert_eq!(o.mapper, "greedy-e");
        assert_eq!(o.trials, 128);
        assert_eq!(o.day, 3);
    }

    #[test]
    fn parses_expected_bits() {
        let o = parse_args(&args(&["--benchmark", "BV4", "--expected", "1011"])).unwrap();
        assert_eq!(o.expected, Some(vec![true, false, true, true]));
    }

    #[test]
    fn rejects_missing_input() {
        assert!(parse_args(&args(&["--mapper", "qiskit"])).is_err());
    }

    #[test]
    fn rejects_unknown_mapper_and_option() {
        assert!(config_for("magic", 0.5).is_err());
        assert!(parse_args(&args(&["--frobnicate", "x"])).is_err());
    }

    #[test]
    fn every_documented_mapper_name_is_accepted() {
        for name in [
            "qiskit",
            "t-smt",
            "t-smt-star",
            "r-smt-star",
            "greedy-v",
            "greedy-e",
        ] {
            assert!(config_for(name, 0.5).is_ok(), "{name}");
        }
    }

    #[test]
    fn run_compiles_a_builtin_benchmark() {
        let options = parse_args(&args(&["--benchmark", "HS2", "--trials", "64"])).unwrap();
        run(&options).unwrap();
    }

    #[test]
    fn parses_day_lists_and_ranges() {
        assert_eq!(parse_days("0,3,5..8").unwrap(), vec![0, 3, 5, 6, 7]);
        assert_eq!(parse_days("2").unwrap(), vec![2]);
        assert!(parse_days("5..5").is_err());
        assert!(parse_days("x").is_err());
    }

    #[test]
    fn parses_topology_names() {
        assert_eq!(parse_topology("ibmq16").unwrap(), TopologySpec::Ibmq16);
        assert_eq!(
            parse_topology("grid-4x4").unwrap(),
            TopologySpec::Grid { mx: 4, my: 4 }
        );
        assert_eq!(
            parse_topology("ring-12").unwrap(),
            TopologySpec::Ring { n: 12 }
        );
        assert_eq!(
            parse_topology("heavy-hex-2x7").unwrap(),
            TopologySpec::HeavyHex { rows: 2, cols: 7 }
        );
        assert!(parse_topology("torus-3x3").is_err());
    }

    #[test]
    fn parses_benchmark_and_mapper_lists() {
        assert_eq!(parse_benchmarks("all").unwrap().len(), 12);
        assert_eq!(parse_benchmarks("representative").unwrap().len(), 3);
        assert_eq!(
            parse_benchmarks("bv4,toffoli").unwrap(),
            vec![Benchmark::Bv4, Benchmark::Toffoli]
        );
        assert!(parse_benchmarks("bv99").is_err());

        assert_eq!(parse_mappers("table1", 0.5).unwrap().len(), 6);
        let pair = parse_mappers("qiskit,greedy-e", 0.5).unwrap();
        assert_eq!(pair[0].0, "qiskit");
        assert_eq!(pair[1].1, CompilerConfig::greedy_e());
        assert!(parse_mappers("magic", 0.5).is_err());
        assert!(parse_mappers("qiskit,qiskit", 0.5).is_err());
    }

    #[test]
    fn sweep_accepts_custom_qasm_and_rejects_malformed_input() {
        let dir = std::env::temp_dir().join("nisqc-qasm-test");
        std::fs::create_dir_all(&dir).unwrap();
        let good = dir.join("good.qasm");
        std::fs::write(
            &good,
            "OPENQASM 2.0;\nqreg q[2];\ncreg c[2];\nh q[0];\ncx q[0], q[1];\n",
        )
        .unwrap();
        let report_path = dir.join("qasm-report.json");
        run_sweep(&args(&[
            "--benchmarks",
            "none",
            "--qasm",
            good.to_str().unwrap(),
            "--mappers",
            "qiskit",
            "--output",
            report_path.to_str().unwrap(),
        ]))
        .unwrap();
        run_sweep(&args(&[
            "--validate",
            report_path.to_str().unwrap(),
            "--expect-cells",
            "1",
        ]))
        .unwrap();

        // A malformed file is a typed diagnosis, never a panic.
        let bad = dir.join("bad.qasm");
        std::fs::write(&bad, "OPENQASM 2.0;\nqreg q[;\n").unwrap();
        let err = run_sweep(&args(&[
            "--benchmarks",
            "none",
            "--qasm",
            bad.to_str().unwrap(),
        ]))
        .unwrap_err();
        assert!(err.contains("cannot parse"), "{err}");

        // So are a missing file and an empty plan.
        assert!(run_sweep(&args(&["--qasm", "/nonexistent/x.qasm"])).is_err());
        assert!(run_sweep(&args(&["--benchmarks", "none"])).is_err());
        // And an oversized register is refused without allocating.
        let huge = dir.join("huge.qasm");
        std::fs::write(&huge, "OPENQASM 2.0;\nqreg q[99999999999];\n").unwrap();
        let err = run_sweep(&args(&[
            "--benchmarks",
            "none",
            "--qasm",
            huge.to_str().unwrap(),
        ]))
        .unwrap_err();
        assert!(err.contains("cannot parse"), "{err}");
    }

    #[test]
    fn sweep_accepts_noise_specs_and_rejects_malformed_ones() {
        let dir = std::env::temp_dir().join("nisqc-noise-test");
        std::fs::create_dir_all(&dir).unwrap();
        let spec = dir.join("depol-ad.json");
        std::fs::write(
            &spec,
            r#"{"name": "depol-cnot_ad-measure", "bindings": [
                {"on": "cnot", "rate": {"calibration": 2.0},
                 "channel": {"kind": "depolarizing-2q"}},
                {"on": "measure", "rate": 0.05,
                 "channel": {"kind": "amplitude-damping"}}]}"#,
        )
        .unwrap();
        let report_path = dir.join("noise-report.json");
        run_sweep(&args(&[
            "--benchmarks",
            "bv4",
            "--mappers",
            "qiskit",
            "--trials",
            "64",
            "--noise",
            spec.to_str().unwrap(),
            "--output",
            report_path.to_str().unwrap(),
        ]))
        .unwrap();
        run_sweep(&args(&[
            "--validate",
            report_path.to_str().unwrap(),
            "--expect-cells",
            "1",
        ]))
        .unwrap();
        let report = Report::from_json(&std::fs::read_to_string(&report_path).unwrap()).unwrap();
        assert_eq!(
            report.cells[0].noise.as_deref(),
            Some("depol-cnot_ad-measure")
        );

        // A malformed spec and a non-CPTP Kraus set are typed diagnoses.
        let bad = dir.join("bad.json");
        std::fs::write(&bad, r#"{"name": "x", "bindings": [{"on": "warp"}]}"#).unwrap();
        let err = run_sweep(&args(&[
            "--benchmarks",
            "bv4",
            "--noise",
            bad.to_str().unwrap(),
        ]))
        .unwrap_err();
        assert!(err.contains("invalid noise spec"), "{err}");
        let noncptp = dir.join("noncptp.json");
        std::fs::write(
            &noncptp,
            r#"{"name": "x", "bindings": [{"on": "sq", "channel": {"kind": "kraus",
                "ops": [[[2, 0], [0, 0], [0, 0], [2, 0]]]}}]}"#,
        )
        .unwrap();
        let err = run_sweep(&args(&[
            "--benchmarks",
            "bv4",
            "--noise",
            noncptp.to_str().unwrap(),
        ]))
        .unwrap_err();
        assert!(err.contains("invalid noise spec"), "{err}");
        assert!(run_sweep(&args(&["--noise", "/nonexistent/n.json"])).is_err());
    }

    #[test]
    fn serve_rejects_unknown_options() {
        assert!(run_serve(&args(&["--frobnicate", "1"])).is_err());
        assert!(run_serve(&args(&["--queue"])).is_err());
        assert!(run_serve(&args(&["--timeout-ms", "soon"])).is_err());
        assert!(run_serve(&args(&["--journal-dir"])).is_err());
    }

    #[test]
    fn sweep_journal_and_resume_reports_are_canonically_identical() {
        let dir = std::env::temp_dir().join("nisqc-journal-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let journal = dir.join("sweep.journal");
        let first = dir.join("first.json");
        let second = dir.join("second.json");
        let plan_args = |journal_flag: &str, journal_path: &str, out: &str| {
            args(&[
                "--benchmarks",
                "bv4",
                "--mappers",
                "qiskit",
                "--trials",
                "32",
                journal_flag,
                journal_path,
                "--output",
                out,
                "--expect-cells",
                "1",
            ])
        };
        run_sweep(&plan_args(
            "--journal",
            journal.to_str().unwrap(),
            first.to_str().unwrap(),
        ))
        .unwrap();
        // Resume the finished journal: every cell loads from disk, and the
        // canonical report matches the uninterrupted run byte for byte.
        run_sweep(&plan_args(
            "--resume",
            journal.to_str().unwrap(),
            second.to_str().unwrap(),
        ))
        .unwrap();
        let a = Report::from_json(&std::fs::read_to_string(&first).unwrap()).unwrap();
        let b = Report::from_json(&std::fs::read_to_string(&second).unwrap()).unwrap();
        assert_eq!(a.resumed_cells, 0);
        assert_eq!(b.resumed_cells, 1);
        assert_eq!(b.cache.journal_hits, 1);
        assert_eq!(a.to_json_line_canonical(), b.to_json_line_canonical());

        // --canonicalize emits the same comparison form for both reports.
        let canon_a = dir.join("a.canon");
        let canon_b = dir.join("b.canon");
        run_sweep(&args(&[
            "--canonicalize",
            first.to_str().unwrap(),
            "--output",
            canon_a.to_str().unwrap(),
        ]))
        .unwrap();
        run_sweep(&args(&[
            "--canonicalize",
            second.to_str().unwrap(),
            "--output",
            canon_b.to_str().unwrap(),
        ]))
        .unwrap();
        assert_eq!(
            std::fs::read(&canon_a).unwrap(),
            std::fs::read(&canon_b).unwrap()
        );

        // The flags are mutually exclusive, and --expect-cells now guards
        // executed sweeps too.
        assert!(run_sweep(&args(&["--journal", "a", "--resume", "b"])).is_err());
        let err = run_sweep(&args(&[
            "--benchmarks",
            "bv4",
            "--mappers",
            "qiskit",
            "--expect-cells",
            "2",
            "--output",
            dir.join("unused.json").to_str().unwrap(),
        ]))
        .unwrap_err();
        assert!(err.contains("expected 2 cells"), "{err}");
    }

    #[test]
    fn journal_subcommand_inspects_compacts_and_reuse_absorbs() {
        let dir = std::env::temp_dir().join("nisqc-journal-tools-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let journal = dir.join("a.journal");
        let first = dir.join("first.json");
        run_sweep(&args(&[
            "--benchmarks",
            "bv4",
            "--mappers",
            "qiskit",
            "--trials",
            "32",
            "--journal",
            journal.to_str().unwrap(),
            "--output",
            first.to_str().unwrap(),
        ]))
        .unwrap();

        // inspect passes on a clean journal; compact shrinks it (the one
        // completed intent is dead weight); the compacted file still
        // inspects clean.
        run_journal(&args(&["inspect", journal.to_str().unwrap()])).unwrap();
        let before = std::fs::metadata(&journal).unwrap().len();
        run_journal(&args(&["compact", journal.to_str().unwrap()])).unwrap();
        assert!(std::fs::metadata(&journal).unwrap().len() < before);
        run_journal(&args(&["inspect", journal.to_str().unwrap()])).unwrap();

        // --reuse absorbs the compacted journal's cell into a new journal:
        // the second sweep recomputes nothing and reports identically.
        let reused = dir.join("b.journal");
        let second = dir.join("second.json");
        run_sweep(&args(&[
            "--benchmarks",
            "bv4",
            "--mappers",
            "qiskit",
            "--trials",
            "32",
            "--journal",
            reused.to_str().unwrap(),
            "--reuse",
            journal.to_str().unwrap(),
            "--output",
            second.to_str().unwrap(),
        ]))
        .unwrap();
        let a = Report::from_json(&std::fs::read_to_string(&first).unwrap()).unwrap();
        let b = Report::from_json(&std::fs::read_to_string(&second).unwrap()).unwrap();
        assert_eq!(b.resumed_cells, 1);
        assert_eq!(a.to_json_line_canonical(), b.to_json_line_canonical());

        // --reuse needs a journal to absorb into; the subcommand needs a
        // known verb and exactly one path.
        assert!(run_sweep(&args(&[
            "--benchmarks",
            "bv4",
            "--reuse",
            journal.to_str().unwrap(),
        ]))
        .is_err());
        assert!(run_journal(&args(&["inspect"])).is_err());
        assert!(run_journal(&args(&["defrag", journal.to_str().unwrap()])).is_err());

        // A torn tail is a nonzero inspect exit; a non-journal is refused.
        let torn = dir.join("torn.journal");
        let mut bytes = std::fs::read(&journal).unwrap();
        bytes.extend_from_slice(b"J1 9 0000 {torn");
        std::fs::write(&torn, &bytes).unwrap();
        assert!(run_journal(&args(&["inspect", torn.to_str().unwrap()])).is_err());
        let bogus = dir.join("notes.txt");
        std::fs::write(&bogus, "notes\n").unwrap();
        assert!(run_journal(&args(&["compact", bogus.to_str().unwrap()])).is_err());
    }

    #[test]
    fn sweep_runs_and_validates_a_tiny_plan() {
        let dir = std::env::temp_dir().join("nisqc-sweep-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("report.json");
        let path_str = path.to_str().unwrap().to_string();
        run_sweep(&args(&[
            "--benchmarks",
            "bv4,hs2",
            "--mappers",
            "qiskit,greedy-e",
            "--days",
            "0..2",
            "--trials",
            "32",
            "--output",
            &path_str,
        ]))
        .unwrap();
        // 2 benchmarks x 2 mappers x 2 days = 8 cells.
        run_sweep(&args(&["--validate", &path_str, "--expect-cells", "8"])).unwrap();
        assert!(run_sweep(&args(&["--validate", &path_str, "--expect-cells", "9"])).is_err());
        let report = Report::from_json(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert!(report.cells.iter().all(|c| c.success_rate.is_some()));
    }
}
