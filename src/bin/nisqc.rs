//! `nisqc` — command-line front end for the noise-adaptive compiler.
//!
//! Reads an OpenQASM 2.0 program, compiles it for a calibrated machine with
//! one of the paper's mapping algorithms, prints a compilation report, and
//! optionally writes the hardware executable and measures its simulated
//! success rate.
//!
//! ```text
//! Usage: nisqc <input.qasm> [options]
//!        nisqc --benchmark BV4 [options]
//!
//! Options:
//!   --mapper <name>    qiskit | t-smt | t-smt-star | r-smt-star |
//!                      greedy-v | greedy-e              (default: r-smt-star)
//!   --omega <w>        readout weight for r-smt-star    (default: 0.5)
//!   --day <d>          calibration day index            (default: 0)
//!   --seed <s>         machine calibration seed         (default: 2019)
//!   --trials <n>       simulate n noisy trials          (default: 0 = skip)
//!   --expected <bits>  correct answer, e.g. 1101, for success-rate reporting
//!   --output <path>    write the compiled OpenQASM here
//! ```

use nisq::prelude::*;
use std::process::ExitCode;

struct Options {
    input: Input,
    mapper: String,
    omega: f64,
    day: usize,
    seed: u64,
    trials: u32,
    expected: Option<Vec<bool>>,
    output: Option<String>,
}

enum Input {
    QasmFile(String),
    Benchmark(Benchmark),
}

fn usage() -> String {
    "usage: nisqc <input.qasm> [--mapper NAME] [--omega W] [--day D] [--seed S] \
     [--trials N] [--expected BITS] [--output PATH]\n       nisqc --benchmark NAME [...]"
        .to_string()
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut input: Option<Input> = None;
    let mut options = Options {
        input: Input::Benchmark(Benchmark::Bv4),
        mapper: "r-smt-star".to_string(),
        omega: 0.5,
        day: 0,
        seed: 2019,
        trials: 0,
        expected: None,
        output: None,
    };

    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        let take_value = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            args.get(*i)
                .cloned()
                .ok_or_else(|| format!("missing value for {arg}"))
        };
        match arg.as_str() {
            "--mapper" => options.mapper = take_value(&mut i)?,
            "--omega" => {
                options.omega = take_value(&mut i)?
                    .parse()
                    .map_err(|_| "omega must be a number".to_string())?
            }
            "--day" => {
                options.day = take_value(&mut i)?
                    .parse()
                    .map_err(|_| "day must be an integer".to_string())?
            }
            "--seed" => {
                options.seed = take_value(&mut i)?
                    .parse()
                    .map_err(|_| "seed must be an integer".to_string())?
            }
            "--trials" => {
                options.trials = take_value(&mut i)?
                    .parse()
                    .map_err(|_| "trials must be an integer".to_string())?
            }
            "--expected" => {
                let bits = take_value(&mut i)?;
                let parsed: Result<Vec<bool>, String> = bits
                    .chars()
                    .map(|c| match c {
                        '0' => Ok(false),
                        '1' => Ok(true),
                        other => Err(format!("invalid bit '{other}' in --expected")),
                    })
                    .collect();
                options.expected = Some(parsed?);
            }
            "--output" => options.output = Some(take_value(&mut i)?),
            "--benchmark" => {
                let name = take_value(&mut i)?;
                let benchmark = Benchmark::all()
                    .into_iter()
                    .find(|b| b.name().eq_ignore_ascii_case(&name))
                    .ok_or_else(|| format!("unknown benchmark {name}"))?;
                input = Some(Input::Benchmark(benchmark));
            }
            "--help" | "-h" => return Err(usage()),
            other if !other.starts_with("--") => {
                input = Some(Input::QasmFile(other.to_string()));
            }
            other => return Err(format!("unknown option {other}\n{}", usage())),
        }
        i += 1;
    }

    options.input = input.ok_or_else(usage)?;
    Ok(options)
}

fn config_for(mapper: &str, omega: f64) -> Result<CompilerConfig, String> {
    Ok(match mapper {
        "qiskit" => CompilerConfig::qiskit(),
        "t-smt" => CompilerConfig::t_smt(RouteSelection::RectangleReservation),
        "t-smt-star" => CompilerConfig::t_smt_star(RouteSelection::OneBendPaths),
        "r-smt-star" => CompilerConfig::r_smt_star(omega),
        "greedy-v" => CompilerConfig::greedy_v(),
        "greedy-e" => CompilerConfig::greedy_e(),
        other => return Err(format!("unknown mapper {other}")),
    })
}

fn run(options: &Options) -> Result<(), String> {
    let (circuit, default_expected) = match &options.input {
        Input::QasmFile(path) => {
            let source =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            let mut circuit =
                nisq::ir::qasm::parse(&source).map_err(|e| format!("cannot parse {path}: {e}"))?;
            circuit.set_name(path.clone());
            (circuit, None)
        }
        Input::Benchmark(benchmark) => (benchmark.circuit(), Some(benchmark.expected_output())),
    };

    let machine = Machine::ibmq16_on_day(options.seed, options.day);
    let config = config_for(&options.mapper, options.omega)?;
    let compiled = Compiler::new(&machine, config)
        .compile(&circuit)
        .map_err(|e| format!("compilation failed: {e}"))?;

    println!("program        : {}", compiled.program_name());
    println!("machine        : {machine}");
    println!("mapper         : {config}");
    println!("placement      : {:?}", compiled.placement().as_slice());
    println!("swaps inserted : {}", compiled.swap_count());
    println!("hardware CNOTs : {}", compiled.hardware_cnot_count());
    println!("duration       : {} timeslots", compiled.duration_slots());
    println!("est. reliability: {:.4}", compiled.estimated_reliability());
    println!("within coherence: {}", compiled.within_coherence());
    println!(
        "compile time   : {:.2} ms",
        compiled.compile_time().as_secs_f64() * 1000.0
    );

    if options.trials > 0 {
        let expected = options.expected.clone().or(default_expected);
        match expected {
            Some(expected) => {
                let simulator =
                    Simulator::new(&machine, SimulatorConfig::with_trials(options.trials, 1));
                let success = simulator.success_rate(&compiled, &expected);
                println!(
                    "success rate   : {success:.4} over {} noisy trials",
                    options.trials
                );
            }
            None => println!(
                "success rate   : skipped (pass --expected BITS to define the correct answer)"
            ),
        }
    }

    match &options.output {
        Some(path) => {
            std::fs::write(path, compiled.qasm())
                .map_err(|e| format!("cannot write {path}: {e}"))?;
            println!("wrote executable to {path}");
        }
        None => {
            println!("\n--- compiled OpenQASM ---");
            print!("{}", compiled.qasm());
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse_args(&args) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    match run(&options) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_benchmark_input_with_options() {
        let o = parse_args(&args(&[
            "--benchmark",
            "Toffoli",
            "--mapper",
            "greedy-e",
            "--trials",
            "128",
            "--day",
            "3",
        ]))
        .unwrap();
        assert!(matches!(o.input, Input::Benchmark(Benchmark::Toffoli)));
        assert_eq!(o.mapper, "greedy-e");
        assert_eq!(o.trials, 128);
        assert_eq!(o.day, 3);
    }

    #[test]
    fn parses_expected_bits() {
        let o = parse_args(&args(&["--benchmark", "BV4", "--expected", "1011"])).unwrap();
        assert_eq!(o.expected, Some(vec![true, false, true, true]));
    }

    #[test]
    fn rejects_missing_input() {
        assert!(parse_args(&args(&["--mapper", "qiskit"])).is_err());
    }

    #[test]
    fn rejects_unknown_mapper_and_option() {
        assert!(config_for("magic", 0.5).is_err());
        assert!(parse_args(&args(&["--frobnicate", "x"])).is_err());
    }

    #[test]
    fn every_documented_mapper_name_is_accepted() {
        for name in [
            "qiskit",
            "t-smt",
            "t-smt-star",
            "r-smt-star",
            "greedy-v",
            "greedy-e",
        ] {
            assert!(config_for(name, 0.5).is_ok(), "{name}");
        }
    }

    #[test]
    fn run_compiles_a_builtin_benchmark() {
        let options = parse_args(&args(&["--benchmark", "HS2", "--trials", "64"])).unwrap();
        run(&options).unwrap();
    }
}
