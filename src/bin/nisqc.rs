//! `nisqc` — command-line front end for the noise-adaptive compiler.
//!
//! Reads an OpenQASM 2.0 program, compiles it for a calibrated machine with
//! one of the paper's mapping algorithms, prints a compilation report, and
//! optionally writes the hardware executable and measures its simulated
//! success rate.
//!
//! ```text
//! Usage: nisqc <input.qasm> [options]
//!        nisqc --benchmark BV4 [options]
//!        nisqc sweep [sweep options]
//!        nisqc sweep --validate report.json [--expect-cells N]
//!
//! Options:
//!   --mapper <name>    qiskit | t-smt | t-smt-star | r-smt-star |
//!                      greedy-v | greedy-e              (default: r-smt-star)
//!   --omega <w>        readout weight for r-smt-star    (default: 0.5)
//!   --day <d>          calibration day index            (default: 0)
//!   --seed <s>         machine calibration seed         (default: 2019)
//!   --trials <n>       simulate n noisy trials          (default: 0 = skip)
//!   --expected <bits>  correct answer, e.g. 1101, for success-rate reporting
//!   --output <path>    write the compiled OpenQASM here
//!
//! Sweep options (execute a declarative plan, emit a JSON report):
//!   --benchmarks <l>   comma list of Table-2 names, "all" or
//!                      "representative"                 (default: representative)
//!   --mappers <l>      comma list of mapper names or "table1"
//!                                                       (default: r-smt-star)
//!   --omega <w>        readout weight for r-smt-star    (default: 0.5)
//!   --days <l>         comma list and/or a..b ranges    (default: 0)
//!   --topology <t>     ibmq16 | grid-MxN | ring-N | heavy-hex-RxC
//!                                                       (default: ibmq16)
//!   --trials <n>       noisy trials per cell            (default: 0 = compile only)
//!   --machine-seed <s> machine calibration seed         (default: 2019)
//!   --sim-seed <s>     fixed simulation seed            (default: per-cell seeds)
//!   --output <path>    write the JSON report here       (default: stdout)
//!   --validate <path>  parse an emitted report instead of running a sweep
//!   --expect-cells <n> with --validate: require exactly n cells
//! ```

use nisq::prelude::*;
use std::process::ExitCode;

struct Options {
    input: Input,
    mapper: String,
    omega: f64,
    day: usize,
    seed: u64,
    trials: u32,
    expected: Option<Vec<bool>>,
    output: Option<String>,
}

enum Input {
    QasmFile(String),
    Benchmark(Benchmark),
}

fn usage() -> String {
    "usage: nisqc <input.qasm> [--mapper NAME] [--omega W] [--day D] [--seed S] \
     [--trials N] [--expected BITS] [--output PATH]\n       nisqc --benchmark NAME [...]"
        .to_string()
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut input: Option<Input> = None;
    let mut options = Options {
        input: Input::Benchmark(Benchmark::Bv4),
        mapper: "r-smt-star".to_string(),
        omega: 0.5,
        day: 0,
        seed: 2019,
        trials: 0,
        expected: None,
        output: None,
    };

    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        let take_value = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            args.get(*i)
                .cloned()
                .ok_or_else(|| format!("missing value for {arg}"))
        };
        match arg.as_str() {
            "--mapper" => options.mapper = take_value(&mut i)?,
            "--omega" => {
                options.omega = take_value(&mut i)?
                    .parse()
                    .map_err(|_| "omega must be a number".to_string())?
            }
            "--day" => {
                options.day = take_value(&mut i)?
                    .parse()
                    .map_err(|_| "day must be an integer".to_string())?
            }
            "--seed" => {
                options.seed = take_value(&mut i)?
                    .parse()
                    .map_err(|_| "seed must be an integer".to_string())?
            }
            "--trials" => {
                options.trials = take_value(&mut i)?
                    .parse()
                    .map_err(|_| "trials must be an integer".to_string())?
            }
            "--expected" => {
                let bits = take_value(&mut i)?;
                let parsed: Result<Vec<bool>, String> = bits
                    .chars()
                    .map(|c| match c {
                        '0' => Ok(false),
                        '1' => Ok(true),
                        other => Err(format!("invalid bit '{other}' in --expected")),
                    })
                    .collect();
                options.expected = Some(parsed?);
            }
            "--output" => options.output = Some(take_value(&mut i)?),
            "--benchmark" => {
                let name = take_value(&mut i)?;
                let benchmark = Benchmark::all()
                    .into_iter()
                    .find(|b| b.name().eq_ignore_ascii_case(&name))
                    .ok_or_else(|| format!("unknown benchmark {name}"))?;
                input = Some(Input::Benchmark(benchmark));
            }
            "--help" | "-h" => return Err(usage()),
            other if !other.starts_with("--") => {
                input = Some(Input::QasmFile(other.to_string()));
            }
            other => return Err(format!("unknown option {other}\n{}", usage())),
        }
        i += 1;
    }

    options.input = input.ok_or_else(usage)?;
    Ok(options)
}

fn config_for(mapper: &str, omega: f64) -> Result<CompilerConfig, String> {
    Ok(match mapper {
        "qiskit" => CompilerConfig::qiskit(),
        "t-smt" => CompilerConfig::t_smt(RouteSelection::RectangleReservation),
        "t-smt-star" => CompilerConfig::t_smt_star(RouteSelection::OneBendPaths),
        "r-smt-star" => CompilerConfig::r_smt_star(omega),
        "greedy-v" => CompilerConfig::greedy_v(),
        "greedy-e" => CompilerConfig::greedy_e(),
        other => return Err(format!("unknown mapper {other}")),
    })
}

fn run(options: &Options) -> Result<(), String> {
    let (circuit, default_expected) = match &options.input {
        Input::QasmFile(path) => {
            let source =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            let mut circuit =
                nisq::ir::qasm::parse(&source).map_err(|e| format!("cannot parse {path}: {e}"))?;
            circuit.set_name(path.clone());
            (circuit, None)
        }
        Input::Benchmark(benchmark) => (benchmark.circuit(), Some(benchmark.expected_output())),
    };

    let machine = Machine::ibmq16_on_day(options.seed, options.day);
    let config = config_for(&options.mapper, options.omega)?;
    let compiled = Compiler::new(&machine, config)
        .compile(&circuit)
        .map_err(|e| format!("compilation failed: {e}"))?;

    println!("program        : {}", compiled.program_name());
    println!("machine        : {machine}");
    println!("mapper         : {config}");
    println!("placement      : {:?}", compiled.placement().as_slice());
    println!("swaps inserted : {}", compiled.swap_count());
    println!("hardware CNOTs : {}", compiled.hardware_cnot_count());
    println!("duration       : {} timeslots", compiled.duration_slots());
    println!("est. reliability: {:.4}", compiled.estimated_reliability());
    println!("within coherence: {}", compiled.within_coherence());
    println!(
        "compile time   : {:.2} ms",
        compiled.compile_time().as_secs_f64() * 1000.0
    );

    if options.trials > 0 {
        let expected = options.expected.clone().or(default_expected);
        match expected {
            Some(expected) => {
                let simulator =
                    Simulator::new(&machine, SimulatorConfig::with_trials(options.trials, 1));
                let success = simulator.success_rate(&compiled, &expected);
                println!(
                    "success rate   : {success:.4} over {} noisy trials",
                    options.trials
                );
            }
            None => println!(
                "success rate   : skipped (pass --expected BITS to define the correct answer)"
            ),
        }
    }

    match &options.output {
        Some(path) => {
            std::fs::write(path, compiled.qasm())
                .map_err(|e| format!("cannot write {path}: {e}"))?;
            println!("wrote executable to {path}");
        }
        None => {
            println!("\n--- compiled OpenQASM ---");
            print!("{}", compiled.qasm());
        }
    }
    Ok(())
}

/// Parses a day-axis argument: comma-separated items, each a single index
/// or an `a..b` half-open range (`"0,3,5..8"` → `[0, 3, 5, 6, 7]`).
fn parse_days(text: &str) -> Result<Vec<usize>, String> {
    let mut days = Vec::new();
    for item in text.split(',') {
        let item = item.trim();
        if let Some((start, end)) = item.split_once("..") {
            let start: usize = start
                .parse()
                .map_err(|_| format!("invalid day range start {start:?}"))?;
            let end: usize = end
                .parse()
                .map_err(|_| format!("invalid day range end {end:?}"))?;
            if start >= end {
                return Err(format!("empty day range {item:?}"));
            }
            days.extend(start..end);
        } else {
            days.push(
                item.parse()
                    .map_err(|_| format!("invalid day index {item:?}"))?,
            );
        }
    }
    if days.is_empty() {
        return Err("no days given".to_string());
    }
    Ok(days)
}

/// Parses a topology name: `ibmq16`, `grid-MxN`, `ring-N` or
/// `heavy-hex-RxC`.
fn parse_topology(text: &str) -> Result<TopologySpec, String> {
    let lower = text.to_ascii_lowercase();
    let dims = |spec: &str| -> Result<(usize, usize), String> {
        spec.split_once('x')
            .and_then(|(a, b)| Some((a.parse().ok()?, b.parse().ok()?)))
            .ok_or_else(|| format!("invalid topology dimensions in {text:?}"))
    };
    if lower == "ibmq16" {
        Ok(TopologySpec::Ibmq16)
    } else if let Some(rest) = lower.strip_prefix("grid-") {
        let (mx, my) = dims(rest)?;
        Ok(TopologySpec::Grid { mx, my })
    } else if let Some(rest) = lower.strip_prefix("ring-") {
        let n = rest
            .parse()
            .map_err(|_| format!("invalid ring size in {text:?}"))?;
        Ok(TopologySpec::Ring { n })
    } else if let Some(rest) = lower.strip_prefix("heavy-hex-") {
        let (rows, cols) = dims(rest)?;
        Ok(TopologySpec::HeavyHex { rows, cols })
    } else {
        Err(format!("unknown topology {text:?}"))
    }
}

/// Resolves a benchmark-list argument into circuit specs.
fn parse_benchmarks(text: &str) -> Result<Vec<Benchmark>, String> {
    match text.to_ascii_lowercase().as_str() {
        "all" => Ok(Benchmark::all().to_vec()),
        "representative" => Ok(Benchmark::representative().to_vec()),
        _ => text
            .split(',')
            .map(|name| {
                let name = name.trim();
                Benchmark::all()
                    .into_iter()
                    .find(|b| b.name().eq_ignore_ascii_case(name))
                    .ok_or_else(|| format!("unknown benchmark {name}"))
            })
            .collect(),
    }
}

/// Resolves a mapper-list argument into labelled configurations.
fn parse_mappers(text: &str, omega: f64) -> Result<Vec<(String, CompilerConfig)>, String> {
    if text.eq_ignore_ascii_case("table1") {
        return Ok(CompilerConfig::table1()
            .into_iter()
            .map(|c| (c.algorithm.name().to_string(), c))
            .collect());
    }
    let mappers: Vec<(String, CompilerConfig)> = text
        .split(',')
        .map(|name| {
            let name = name.trim();
            config_for(name, omega).map(|c| (name.to_string(), c))
        })
        .collect::<Result<_, _>>()?;
    // Labels address report cells, so they must be unambiguous.
    for (i, (label, _)) in mappers.iter().enumerate() {
        if mappers[..i].iter().any(|(seen, _)| seen == label) {
            return Err(format!("duplicate mapper {label}"));
        }
    }
    Ok(mappers)
}

/// Runs the `sweep` subcommand: execute a plan and emit JSON, or validate
/// an emitted report (`--validate`).
fn run_sweep(args: &[String]) -> Result<(), String> {
    let mut benchmarks = "representative".to_string();
    let mut mappers = "r-smt-star".to_string();
    let mut omega = 0.5;
    let mut days = vec![0usize];
    let mut topology = TopologySpec::Ibmq16;
    let mut trials = 0u32;
    let mut machine_seed = nisq::exp::DEFAULT_MACHINE_SEED;
    let mut sim_seed: Option<u64> = None;
    let mut output: Option<String> = None;
    let mut validate: Option<String> = None;
    let mut expect_cells: Option<usize> = None;

    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        let take_value = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            args.get(*i)
                .cloned()
                .ok_or_else(|| format!("missing value for {arg}"))
        };
        let parse = |text: String, what: &str| -> Result<u64, String> {
            text.parse()
                .map_err(|_| format!("{what} must be an integer"))
        };
        match arg.as_str() {
            "--benchmarks" => benchmarks = take_value(&mut i)?,
            "--mappers" => mappers = take_value(&mut i)?,
            "--omega" => {
                omega = take_value(&mut i)?
                    .parse()
                    .map_err(|_| "omega must be a number".to_string())?
            }
            "--days" => days = parse_days(&take_value(&mut i)?)?,
            "--topology" => topology = parse_topology(&take_value(&mut i)?)?,
            "--trials" => {
                trials = u32::try_from(parse(take_value(&mut i)?, "trials")?)
                    .map_err(|_| format!("trials must be at most {}", u32::MAX))?
            }
            "--machine-seed" => machine_seed = parse(take_value(&mut i)?, "machine-seed")?,
            "--sim-seed" => sim_seed = Some(parse(take_value(&mut i)?, "sim-seed")?),
            "--output" => output = Some(take_value(&mut i)?),
            "--validate" => validate = Some(take_value(&mut i)?),
            "--expect-cells" => {
                expect_cells = Some(parse(take_value(&mut i)?, "expect-cells")? as usize)
            }
            other => return Err(format!("unknown sweep option {other}\n{}", usage())),
        }
        i += 1;
    }

    if let Some(path) = validate {
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let report = Report::from_json(&text).map_err(|e| format!("invalid report: {e}"))?;
        if let Some(expected) = expect_cells {
            if report.cells.len() != expected {
                return Err(format!(
                    "expected {expected} cells, report has {}",
                    report.cells.len()
                ));
            }
        }
        println!(
            "{path}: valid report ({} cells, {} compiles, {} compile hits, {} placement passes; \
             tiers {} error-free / {} pauli-prop / {} checkpointed / {} full, memo {}/{} hits)",
            report.cells.len(),
            report.cache.compile_requests,
            report.cache.compile_hits,
            report.cache.place_runs,
            report.tiers.error_free,
            report.tiers.pauli_prop,
            report.tiers.checkpointed,
            report.tiers.full_replay,
            report.tiers.memo_hits,
            report.tiers.memo_hits + report.tiers.memo_misses,
        );
        return Ok(());
    }

    let mut plan = SweepPlan::new()
        .benchmarks(parse_benchmarks(&benchmarks)?)
        .with_configs(parse_mappers(&mappers, omega)?)
        .days(days)
        .topology(topology)
        .with_machine_seed(machine_seed)
        .with_trials(trials);
    if let Some(seed) = sim_seed {
        plan = plan.fixed_sim_seed(seed);
    }

    let mut session = Session::new();
    let report = session
        .run(&plan)
        .map_err(|e| format!("sweep failed: {e}"))?;
    let json = report.to_json();
    match output {
        Some(path) => {
            std::fs::write(&path, &json).map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!(
                "wrote {path} ({} cells, {} compile hits, {} placement passes over {} compiles)",
                report.cells.len(),
                report.cache.compile_hits,
                report.cache.place_runs,
                report.cache.compile_requests,
            );
        }
        None => print!("{json}"),
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("sweep") {
        return match run_sweep(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(message) => {
                eprintln!("error: {message}");
                ExitCode::FAILURE
            }
        };
    }
    let options = match parse_args(&args) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    match run(&options) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_benchmark_input_with_options() {
        let o = parse_args(&args(&[
            "--benchmark",
            "Toffoli",
            "--mapper",
            "greedy-e",
            "--trials",
            "128",
            "--day",
            "3",
        ]))
        .unwrap();
        assert!(matches!(o.input, Input::Benchmark(Benchmark::Toffoli)));
        assert_eq!(o.mapper, "greedy-e");
        assert_eq!(o.trials, 128);
        assert_eq!(o.day, 3);
    }

    #[test]
    fn parses_expected_bits() {
        let o = parse_args(&args(&["--benchmark", "BV4", "--expected", "1011"])).unwrap();
        assert_eq!(o.expected, Some(vec![true, false, true, true]));
    }

    #[test]
    fn rejects_missing_input() {
        assert!(parse_args(&args(&["--mapper", "qiskit"])).is_err());
    }

    #[test]
    fn rejects_unknown_mapper_and_option() {
        assert!(config_for("magic", 0.5).is_err());
        assert!(parse_args(&args(&["--frobnicate", "x"])).is_err());
    }

    #[test]
    fn every_documented_mapper_name_is_accepted() {
        for name in [
            "qiskit",
            "t-smt",
            "t-smt-star",
            "r-smt-star",
            "greedy-v",
            "greedy-e",
        ] {
            assert!(config_for(name, 0.5).is_ok(), "{name}");
        }
    }

    #[test]
    fn run_compiles_a_builtin_benchmark() {
        let options = parse_args(&args(&["--benchmark", "HS2", "--trials", "64"])).unwrap();
        run(&options).unwrap();
    }

    #[test]
    fn parses_day_lists_and_ranges() {
        assert_eq!(parse_days("0,3,5..8").unwrap(), vec![0, 3, 5, 6, 7]);
        assert_eq!(parse_days("2").unwrap(), vec![2]);
        assert!(parse_days("5..5").is_err());
        assert!(parse_days("x").is_err());
    }

    #[test]
    fn parses_topology_names() {
        assert_eq!(parse_topology("ibmq16").unwrap(), TopologySpec::Ibmq16);
        assert_eq!(
            parse_topology("grid-4x4").unwrap(),
            TopologySpec::Grid { mx: 4, my: 4 }
        );
        assert_eq!(
            parse_topology("ring-12").unwrap(),
            TopologySpec::Ring { n: 12 }
        );
        assert_eq!(
            parse_topology("heavy-hex-2x7").unwrap(),
            TopologySpec::HeavyHex { rows: 2, cols: 7 }
        );
        assert!(parse_topology("torus-3x3").is_err());
    }

    #[test]
    fn parses_benchmark_and_mapper_lists() {
        assert_eq!(parse_benchmarks("all").unwrap().len(), 12);
        assert_eq!(parse_benchmarks("representative").unwrap().len(), 3);
        assert_eq!(
            parse_benchmarks("bv4,toffoli").unwrap(),
            vec![Benchmark::Bv4, Benchmark::Toffoli]
        );
        assert!(parse_benchmarks("bv99").is_err());

        assert_eq!(parse_mappers("table1", 0.5).unwrap().len(), 6);
        let pair = parse_mappers("qiskit,greedy-e", 0.5).unwrap();
        assert_eq!(pair[0].0, "qiskit");
        assert_eq!(pair[1].1, CompilerConfig::greedy_e());
        assert!(parse_mappers("magic", 0.5).is_err());
        assert!(parse_mappers("qiskit,qiskit", 0.5).is_err());
    }

    #[test]
    fn sweep_runs_and_validates_a_tiny_plan() {
        let dir = std::env::temp_dir().join("nisqc-sweep-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("report.json");
        let path_str = path.to_str().unwrap().to_string();
        run_sweep(&args(&[
            "--benchmarks",
            "bv4,hs2",
            "--mappers",
            "qiskit,greedy-e",
            "--days",
            "0..2",
            "--trials",
            "32",
            "--output",
            &path_str,
        ]))
        .unwrap();
        // 2 benchmarks x 2 mappers x 2 days = 8 cells.
        run_sweep(&args(&["--validate", &path_str, "--expect-cells", "8"])).unwrap();
        assert!(run_sweep(&args(&["--validate", &path_str, "--expect-cells", "9"])).is_err());
        let report = Report::from_json(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert!(report.cells.iter().all(|c| c.success_rate.is_some()));
    }
}
