//! # nisq — noise-adaptive compiler mappings for NISQ computers
//!
//! Facade crate re-exporting the whole toolchain of this reproduction of
//! *Noise-Adaptive Compiler Mappings for Noisy Intermediate-Scale Quantum
//! Computers* (ASPLOS 2019):
//!
//! * [`ir`] — circuit IR, benchmarks, OpenQASM ([`nisq_ir`])
//! * [`machine`] — topologies, calibration data and its synthetic generator
//!   ([`nisq_machine`])
//! * [`opt`] — the placement/scheduling optimization substrate
//!   ([`nisq_opt`])
//! * [`compiler`] — the noise-adaptive compiler itself ([`nisq_core`])
//! * [`sim`] — the noisy simulator used to measure success rates
//!   ([`nisq_sim`])
//!
//! The [`prelude`] pulls in the handful of types most programs need.
//!
//! # Example
//!
//! ```
//! use nisq::prelude::*;
//!
//! // Compile Bernstein-Vazirani for today's calibration and measure how
//! // often it returns the right answer under realistic noise.
//! let machine = Machine::ibmq16_on_day(0, 0);
//! let compiled = Compiler::new(&machine, CompilerConfig::r_smt_star(0.5))
//!     .compile(&Benchmark::Bv4.circuit())
//!     .unwrap();
//! let sim = Simulator::new(&machine, SimulatorConfig::with_trials(256, 0));
//! let success = sim.success_rate(&compiled, &Benchmark::Bv4.expected_output());
//! assert!(success > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use nisq_core as compiler;
pub use nisq_ir as ir;
pub use nisq_machine as machine;
pub use nisq_opt as opt;
pub use nisq_sim as sim;

/// The types most users need, in one import.
pub mod prelude {
    pub use nisq_core::{
        Algorithm, CompileContext, CompiledCircuit, Compiler, CompilerConfig, Pass, Pipeline,
        RouteSelection, SwapHandling,
    };
    pub use nisq_ir::{Benchmark, Circuit, Gate, GateKind, Qubit};
    pub use nisq_machine::{
        CalibrationGenerator, GridTopology, HwQubit, Machine, Topology, TopologySpec,
    };
    pub use nisq_opt::Placement;
    pub use nisq_sim::{SimulationResult, Simulator, SimulatorConfig};
}
