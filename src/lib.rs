//! # nisq — noise-adaptive compiler mappings for NISQ computers
//!
//! Facade crate re-exporting the whole toolchain of this reproduction of
//! *Noise-Adaptive Compiler Mappings for Noisy Intermediate-Scale Quantum
//! Computers* (ASPLOS 2019):
//!
//! * [`ir`] — circuit IR, benchmarks, OpenQASM ([`nisq_ir`])
//! * [`machine`] — topologies, calibration data and its synthetic generator
//!   ([`nisq_machine`])
//! * [`opt`] — the placement/scheduling optimization substrate
//!   ([`nisq_opt`])
//! * [`compiler`] — the noise-adaptive compiler itself ([`nisq_core`])
//! * [`sim`] — the noisy simulator used to measure success rates
//!   ([`nisq_sim`])
//! * [`exp`] — the declarative experiment API: [`SweepPlan`] workloads
//!   executed by a caching [`Session`] into serializable [`Report`]s
//!   ([`nisq_exp`])
//! * [`serve`] — the fault-tolerant `nisqc serve` daemon: a persistent
//!   session behind a line-delimited JSON protocol ([`nisq_serve`])
//!
//! The [`prelude`] pulls in the handful of types most programs need.
//!
//! # Example
//!
//! ```
//! use nisq::prelude::*;
//!
//! // Declare a workload — Bernstein-Vazirani under the noise-adaptive
//! // mapper and the baseline — and execute it through a caching session.
//! let plan = SweepPlan::new()
//!     .benchmark(Benchmark::Bv4)
//!     .config("Qiskit", CompilerConfig::qiskit())
//!     .config("R-SMT*", CompilerConfig::r_smt_star(0.5))
//!     .with_trials(256)
//!     .fixed_sim_seed(0);
//! let report = Session::new().run(&plan).unwrap();
//! let adaptive = report.require("BV4", "R-SMT*", 0);
//! assert!(adaptive.success() > 0.0);
//! assert!(adaptive.estimated_reliability > 0.0);
//! ```
//!
//! [`SweepPlan`]: prelude::SweepPlan
//! [`Session`]: prelude::Session
//! [`Report`]: prelude::Report

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use nisq_core as compiler;
pub use nisq_exp as exp;
pub use nisq_ir as ir;
pub use nisq_machine as machine;
pub use nisq_opt as opt;
pub use nisq_serve as serve;
pub use nisq_sim as sim;

/// The types most users need, in one import.
pub mod prelude {
    pub use nisq_core::{
        Algorithm, CompileContext, CompiledCircuit, Compiler, CompilerConfig, Pass, Pipeline,
        PlacementCache, RouteSelection, SwapHandling,
    };
    pub use nisq_exp::{
        CacheStats, Cell, CellRecord, CircuitSpec, Journal, NoiseSpec, Report, RunControl, Session,
        SweepPlan,
    };
    pub use nisq_ir::{Benchmark, Circuit, Gate, GateKind, Qubit};
    pub use nisq_machine::{
        CalibrationGenerator, GridTopology, HwQubit, Machine, Topology, TopologySpec,
    };
    pub use nisq_opt::Placement;
    pub use nisq_sim::{SimulationResult, Simulator, SimulatorConfig};
}
