//! Property-based integration tests: for arbitrary random circuits and
//! calibration days, every compiler configuration must produce executables
//! that (a) respect the machine's connectivity, (b) compute exactly the same
//! function as the input circuit, and (c) carry internally-consistent
//! schedules and placements.

use nisq::prelude::*;
use nisq_ir::{random_circuit, RandomCircuitConfig};
use proptest::prelude::*;

/// Builds a small random circuit, keeping sizes modest so the exact solver
/// and the state-vector check stay fast inside proptest's many cases.
fn small_random_circuit(qubits: usize, gates: usize, seed: u64) -> Circuit {
    random_circuit(RandomCircuitConfig::new(qubits, gates, seed))
}

fn all_configs() -> Vec<CompilerConfig> {
    // Cap the exact solver's budget: random circuits have denser interaction
    // graphs than the paper benchmarks, and the property tests only need a
    // valid (not provably optimal) mapping from the SMT-style variants.
    CompilerConfig::table1()
        .into_iter()
        .map(|c| c.with_solver_budget(30_000, Some(std::time::Duration::from_millis(500))))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn compiled_circuits_compute_the_same_function(
        qubits in 2usize..6,
        gates in 4usize..40,
        seed in 0u64..1_000,
        day in 0usize..4,
    ) {
        let circuit = small_random_circuit(qubits, gates, seed);
        let machine = Machine::ibmq16_on_day(2019, day);
        // Reference: noiseless simulation of the logical circuit.
        let sim = Simulator::new(&machine, SimulatorConfig::ideal(64));
        let reference = sim.run(&circuit);

        for config in all_configs() {
            let compiled = Compiler::new(&machine, config).compile(&circuit).unwrap();
            let result = sim.run(compiled.physical_circuit());
            // The logical circuit measures every qubit once at the end, so
            // the output distributions must match. Compare the probability
            // of every outcome the reference observed.
            for (bits, &count) in reference.counts() {
                let p_ref = count as f64 / reference.trials() as f64;
                let p_cmp = result.probability_of(bits);
                prop_assert!(
                    (p_ref - p_cmp).abs() < 0.35,
                    "{} changed the distribution of {:?}: {p_ref} vs {p_cmp}",
                    config.algorithm, bits
                );
            }
        }
    }

    #[test]
    fn two_qubit_gates_are_always_adjacent_after_compilation(
        qubits in 2usize..8,
        gates in 4usize..60,
        seed in 0u64..1_000,
    ) {
        let circuit = small_random_circuit(qubits, gates, seed);
        let machine = Machine::ibmq16_on_day(7, 0);
        for config in all_configs() {
            let compiled = Compiler::new(&machine, config).compile(&circuit).unwrap();
            for gate in compiled.physical_circuit().expand_swaps().iter() {
                if gate.is_two_qubit() {
                    prop_assert!(machine.topology().adjacent(
                        HwQubit(gate.qubits()[0].0),
                        HwQubit(gate.qubits()[1].0),
                    ));
                }
            }
        }
    }

    #[test]
    fn placements_are_injective_and_schedules_respect_dependencies(
        qubits in 2usize..8,
        gates in 4usize..60,
        seed in 0u64..1_000,
    ) {
        let circuit = small_random_circuit(qubits, gates, seed);
        let machine = Machine::ibmq16_on_day(3, 1);
        let dag = circuit.dag();
        for config in all_configs() {
            let compiled = Compiler::new(&machine, config).compile(&circuit).unwrap();
            prop_assert!(compiled.placement().validate(machine.num_qubits()).is_ok());
            let schedule = compiled.schedule();
            prop_assert_eq!(schedule.gates.len(), circuit.len());
            for entry in &schedule.gates {
                for &pred in dag.predecessors(entry.gate_index) {
                    let pred_entry = schedule.entry(pred).unwrap();
                    prop_assert!(entry.start >= pred_entry.finish());
                }
            }
        }
    }

    #[test]
    fn estimated_reliability_is_a_probability_and_monotone_in_noise(
        qubits in 2usize..6,
        gates in 4usize..40,
        seed in 0u64..1_000,
    ) {
        let circuit = small_random_circuit(qubits, gates, seed);
        let machine = Machine::ibmq16_on_day(11, 0);
        for config in all_configs() {
            let compiled = Compiler::new(&machine, config).compile(&circuit).unwrap();
            let r = compiled.estimated_reliability();
            prop_assert!(r > 0.0 && r <= 1.0, "{} reliability {r}", config.algorithm);
        }
    }

    #[test]
    fn qasm_emission_round_trips_for_random_circuits(
        qubits in 2usize..6,
        gates in 4usize..40,
        seed in 0u64..1_000,
    ) {
        let circuit = small_random_circuit(qubits, gates, seed);
        let emitted = nisq::ir::qasm::emit(&circuit);
        let parsed = nisq::ir::qasm::parse(&emitted).unwrap();
        prop_assert_eq!(parsed.len(), circuit.len());
        prop_assert_eq!(parsed.cnot_count(), circuit.cnot_count());
    }
}
