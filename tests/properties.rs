//! Property-based integration tests: for arbitrary random circuits and
//! calibration days, every compiler configuration must produce executables
//! that (a) respect the machine's connectivity, (b) compute exactly the same
//! function as the input circuit, and (c) carry internally-consistent
//! schedules and placements.
//!
//! `proptest` is unavailable offline (see shims/README.md), so each property
//! runs over a deterministic, seeded sample of the parameter space instead
//! of a shrinking search. Failures print the sampled case, which is fully
//! reproducible from the seed.

use nisq::prelude::*;
use nisq_ir::{random_circuit, RandomCircuitConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: usize = 12;

/// One sampled property case: circuit shape, circuit seed, calibration day.
#[derive(Debug, Clone, Copy)]
struct Case {
    qubits: usize,
    gates: usize,
    seed: u64,
    day: usize,
}

fn cases(property_seed: u64, max_qubits: usize, max_gates: usize) -> Vec<Case> {
    let mut rng = StdRng::seed_from_u64(property_seed);
    (0..CASES)
        .map(|_| Case {
            qubits: rng.gen_range(2..max_qubits),
            gates: rng.gen_range(4..max_gates),
            seed: rng.gen_range(0..1_000u64),
            day: rng.gen_range(0..4usize),
        })
        .collect()
}

/// Builds a small random circuit, keeping sizes modest so the exact solver
/// and the state-vector check stay fast across the sampled cases.
fn small_random_circuit(case: Case) -> Circuit {
    random_circuit(RandomCircuitConfig::new(case.qubits, case.gates, case.seed))
}

fn all_configs() -> Vec<CompilerConfig> {
    // Cap the exact solver's budget: random circuits have denser interaction
    // graphs than the paper benchmarks, and the property tests only need a
    // valid (not provably optimal) mapping from the SMT-style variants.
    CompilerConfig::table1()
        .into_iter()
        .map(|c| c.with_solver_budget(30_000, Some(std::time::Duration::from_millis(500))))
        .collect()
}

#[test]
fn compiled_circuits_compute_the_same_function() {
    for case in cases(0xC0FFEE, 6, 40) {
        let circuit = small_random_circuit(case);
        let machine = Machine::ibmq16_on_day(2019, case.day);
        // Reference: noiseless simulation of the logical circuit.
        let sim = Simulator::new(&machine, SimulatorConfig::ideal(64));
        let reference = sim.run(&circuit);

        for config in all_configs() {
            let compiled = Compiler::new(&machine, config).compile(&circuit).unwrap();
            let result = sim.run(compiled.physical_circuit());
            // The logical circuit measures every qubit once at the end, so
            // the output distributions must match. Compare the probability
            // of every outcome the reference observed.
            for (bits, &count) in reference.counts() {
                let p_ref = count as f64 / reference.trials() as f64;
                let p_cmp = result.probability_of(bits);
                assert!(
                    (p_ref - p_cmp).abs() < 0.35,
                    "{:?}: {} changed the distribution of {:?}: {p_ref} vs {p_cmp}",
                    case,
                    config.algorithm,
                    bits
                );
            }
        }
    }
}

#[test]
fn two_qubit_gates_are_always_adjacent_after_compilation() {
    for case in cases(0xAD0ACE17, 8, 60) {
        let circuit = small_random_circuit(case);
        let machine = Machine::ibmq16_on_day(7, 0);
        for config in all_configs() {
            let compiled = Compiler::new(&machine, config).compile(&circuit).unwrap();
            for gate in compiled.physical_circuit().expand_swaps().iter() {
                if gate.is_two_qubit() {
                    assert!(
                        machine
                            .topology()
                            .adjacent(HwQubit(gate.qubits()[0].0), HwQubit(gate.qubits()[1].0),),
                        "{case:?}: {} produced non-adjacent two-qubit gate {gate}",
                        config.algorithm
                    );
                }
            }
        }
    }
}

#[test]
fn placements_are_injective_and_schedules_respect_dependencies() {
    for case in cases(0x5C4ED01E, 8, 60) {
        let circuit = small_random_circuit(case);
        let machine = Machine::ibmq16_on_day(3, 1);
        let dag = circuit.dag();
        for config in all_configs() {
            let compiled = Compiler::new(&machine, config).compile(&circuit).unwrap();
            assert!(compiled.placement().validate(machine.num_qubits()).is_ok());
            let schedule = compiled.schedule();
            assert_eq!(schedule.gates.len(), circuit.len());
            for entry in &schedule.gates {
                for &pred in dag.predecessors(entry.gate_index) {
                    let pred_entry = schedule.entry(pred).unwrap();
                    assert!(
                        entry.start >= pred_entry.finish(),
                        "{case:?}: {} scheduled gate {} before its dependency",
                        config.algorithm,
                        entry.gate_index
                    );
                }
            }
        }
    }
}

#[test]
fn estimated_reliability_is_a_probability() {
    for case in cases(0x2E11AB1E, 6, 40) {
        let circuit = small_random_circuit(case);
        let machine = Machine::ibmq16_on_day(11, 0);
        for config in all_configs() {
            let compiled = Compiler::new(&machine, config).compile(&circuit).unwrap();
            let r = compiled.estimated_reliability();
            assert!(
                r > 0.0 && r <= 1.0,
                "{case:?}: {} reliability {r}",
                config.algorithm
            );
        }
    }
}

#[test]
fn qasm_emission_round_trips_for_random_circuits() {
    for case in cases(0x0A5A, 6, 40) {
        let circuit = small_random_circuit(case);
        let emitted = nisq::ir::qasm::emit(&circuit);
        let parsed = nisq::ir::qasm::parse(&emitted).unwrap();
        assert_eq!(parsed.len(), circuit.len(), "{case:?}");
        assert_eq!(parsed.cnot_count(), circuit.cnot_count(), "{case:?}");
    }
}
