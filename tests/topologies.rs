//! Multi-backend scenarios: the compiler pipeline on pluggable machine
//! topologies (grids, rings, heavy-hex lattices) and with the
//! permutation-tracking routing policy.
//!
//! Every executable is validated two ways: all two-qubit gates respect the
//! machine's coupling graph, and a noiseless simulation reproduces the
//! benchmark's classically-known answer — so routing, layout tracking and
//! measurement relocation are verified end to end.

use nisq::prelude::*;

fn assert_respects_connectivity(machine: &Machine, compiled: &CompiledCircuit, label: &str) {
    for gate in compiled.physical_circuit().expand_swaps().iter() {
        if gate.is_two_qubit() {
            let a = HwQubit(gate.qubits()[0].0);
            let b = HwQubit(gate.qubits()[1].0);
            assert!(
                machine.topology().adjacent(a, b),
                "{label}: non-adjacent two-qubit gate {a}-{b} on {}",
                machine.name()
            );
        }
    }
}

fn assert_computes_right_answer(machine: &Machine, compiled: &CompiledCircuit, b: Benchmark) {
    let sim = Simulator::new(machine, SimulatorConfig::ideal(16));
    let result = sim.run(compiled.physical_circuit());
    assert!(
        (result.probability_of(&b.expected_output()) - 1.0).abs() < 1e-9,
        "{b} mis-compiled on {}: {result}",
        machine.name()
    );
}

#[test]
fn grid_and_ring_machines_compile_every_benchmark_with_every_config() {
    for spec in [
        TopologySpec::Grid { mx: 4, my: 4 },
        TopologySpec::Ring { n: 16 },
    ] {
        let machine = Machine::from_spec(spec, 2019, 0);
        for config in CompilerConfig::table1() {
            for b in Benchmark::all() {
                let compiled = Compiler::new(&machine, config)
                    .compile(&b.circuit())
                    .unwrap_or_else(|e| {
                        panic!(
                            "{} failed on {b} for {}: {e}",
                            config.algorithm,
                            machine.name()
                        )
                    });
                assert_respects_connectivity(&machine, &compiled, &format!("{}", config.algorithm));
                assert_computes_right_answer(&machine, &compiled, b);
            }
        }
    }
}

#[test]
fn permutation_routing_compiles_every_benchmark_on_new_topologies() {
    // The permutation-tracking policy (no swap-back) exercised end to end
    // on both new topologies: measurements must follow the drifted layout
    // for the answers to come out right.
    for spec in [
        TopologySpec::Grid { mx: 4, my: 4 },
        TopologySpec::Ring { n: 16 },
    ] {
        let machine = Machine::from_spec(spec, 2019, 0);
        let config = CompilerConfig::qiskit().with_swap_handling(SwapHandling::Permute);
        for b in Benchmark::all() {
            let compiled = Compiler::new(&machine, config)
                .compile(&b.circuit())
                .unwrap_or_else(|e| panic!("permute failed on {b}: {e}"));
            assert_respects_connectivity(&machine, &compiled, "qiskit+permute");
            assert_computes_right_answer(&machine, &compiled, b);
        }
    }
}

#[test]
fn permutation_routing_halves_movement_on_ibmq16() {
    let machine = Machine::ibmq16_on_day(2019, 0);
    let swap_back = CompilerConfig::qiskit();
    let permute = swap_back.with_swap_handling(SwapHandling::Permute);
    let mut saw_movement = false;
    let (mut base_swaps, mut perm_swaps) = (0usize, 0usize);
    let (mut base_slots, mut perm_slots) = (0u64, 0u64);
    for b in Benchmark::all() {
        let baseline = Compiler::new(&machine, swap_back)
            .compile(&b.circuit())
            .unwrap();
        let permuted = Compiler::new(&machine, permute)
            .compile(&b.circuit())
            .unwrap();

        // Both must still compute the right answer.
        assert_computes_right_answer(&machine, &permuted, b);

        let count_swaps = |c: &CompiledCircuit| {
            c.physical_circuit()
                .iter()
                .filter(|g| g.kind() == GateKind::Swap)
                .count()
        };
        // Program-level SWAP gates (e.g. QFT's reversal) emit one physical
        // swap that is the gate itself, not movement — discount them.
        let program_swaps = b
            .circuit()
            .iter()
            .filter(|g| g.kind() == GateKind::Swap)
            .count();
        // Swap-back emits exactly twice the one-way swaps; permutation
        // tracking emits exactly the one-way count. Under permutation
        // tracking an *adjacent* program SWAP is elided entirely (a free
        // layout relabeling, scheduled with no route and no physical
        // gate), so discount only the program swaps that survived.
        let source: Vec<GateKind> = b.circuit().iter().map(|g| g.kind()).collect();
        let elided = permuted
            .schedule()
            .gates
            .iter()
            .filter(|e| source[e.gate_index] == GateKind::Swap && e.route.is_none())
            .count();
        assert_eq!(
            count_swaps(&baseline) - program_swaps,
            2 * baseline.swap_count(),
            "{b}"
        );
        assert_eq!(
            count_swaps(&permuted) - (program_swaps - elided),
            permuted.swap_count(),
            "{b}"
        );
        saw_movement |= baseline.swap_count() > 0;
        base_swaps += count_swaps(&baseline);
        perm_swaps += count_swaps(&permuted);
        base_slots += u64::from(baseline.duration_slots());
        perm_slots += u64::from(permuted.duration_slots());
    }
    assert!(
        saw_movement,
        "no benchmark needed movement; test is vacuous"
    );
    // Per-benchmark a drifted layout can occasionally lengthen a later
    // route, but across the suite eliding the swap-backs must pay off.
    assert!(
        perm_swaps < base_swaps,
        "permutation tracking inserted {perm_swaps} physical swaps vs {base_swaps}"
    );
    assert!(
        perm_slots < base_slots,
        "permutation tracking took {perm_slots} total slots vs {base_slots}"
    );
}

#[test]
fn permutation_final_placement_tracks_the_drift() {
    let machine = Machine::ibmq16_on_day(2019, 0);
    let config = CompilerConfig::qiskit().with_swap_handling(SwapHandling::Permute);
    let compiled = Compiler::new(&machine, config)
        .compile(&Benchmark::Bv8.circuit())
        .unwrap();
    // BV8 under the lexicographic baseline needs movement, so the final
    // placement must differ from the initial one...
    assert_ne!(compiled.placement(), compiled.final_placement());
    // ...while remaining a valid (injective, in-range) placement.
    compiled
        .final_placement()
        .validate(machine.num_qubits())
        .expect("final placement stays injective");
    // Note a measurement does not necessarily read the *final* location: a
    // later gate may route through an already-measured qubit and displace
    // it. The ideal-simulation checks in the other tests pin down that
    // measures read the right location at the right time.
    // Under swap-back the two placements coincide.
    let swap_back = Compiler::new(&machine, CompilerConfig::qiskit())
        .compile(&Benchmark::Bv8.circuit())
        .unwrap();
    assert_eq!(swap_back.placement(), swap_back.final_placement());
}

#[test]
fn heavy_hex_machine_compiles_representative_benchmarks() {
    let machine = Machine::from_spec(TopologySpec::HeavyHex { rows: 2, cols: 7 }, 2019, 0);
    assert!(machine.num_qubits() >= 14);
    for policy in [SwapHandling::SwapBack, SwapHandling::Permute] {
        let config = CompilerConfig::greedy_e().with_swap_handling(policy);
        for b in Benchmark::representative() {
            let compiled = Compiler::new(&machine, config)
                .compile(&b.circuit())
                .unwrap_or_else(|e| panic!("greedy-e ({policy:?}) failed on {b}: {e}"));
            assert_respects_connectivity(&machine, &compiled, "greedy-e heavy-hex");
            assert_computes_right_answer(&machine, &compiled, b);
        }
    }
}

#[test]
fn daily_calibration_exists_for_every_topology() {
    // The calibration generator is parameterized over any topology: every
    // edge and qubit of each spec gets calibrated values, and the machine's
    // reliability model builds without a grid.
    for spec in [
        TopologySpec::Ibmq16,
        TopologySpec::Grid { mx: 5, my: 3 },
        TopologySpec::Ring { n: 11 },
        TopologySpec::HeavyHex { rows: 3, cols: 5 },
    ] {
        let machine = Machine::from_spec(spec, 7, 2);
        let calibration = machine.calibration();
        assert_eq!(calibration.num_qubits(), machine.num_qubits());
        for &(a, b) in machine.topology().edges() {
            assert!(calibration.cnot_error(a, b).unwrap() > 0.0);
        }
        let reliability = machine.reliability();
        let far = HwQubit(machine.num_qubits() - 1);
        assert!(reliability.best_path_cnot_reliability(HwQubit(0), far) > 0.0);
    }
}

/// Quality regression guard for the topology-aware greedy seeding
/// (ROADMAP: "seed on highest-degree hardware qubit is untuned off-grid").
///
/// The floors below were measured at implementation time on the fixed
/// machine seed 2019 and carry ~30% headroom; they pin the ring
/// neighborhood-aware seeding (GreedyE*/GreedyV* antipodal to the weakest
/// arc) and the heavy-hex behavior (bridge-free GreedyV* hub seat) against
/// accidental regressions. Everything here is deterministic.
#[test]
fn topology_aware_greedy_seeding_quality_on_ring_and_heavy_hex() {
    let suite = [Benchmark::Bv8, Benchmark::Adder, Benchmark::Hs6];
    let quality = |machine: &Machine, config: CompilerConfig| -> f64 {
        suite
            .iter()
            .map(|b| {
                Compiler::new(machine, config)
                    .compile(&b.circuit())
                    .unwrap()
                    .estimated_reliability()
            })
            .product()
    };
    for (spec, floor_v, floor_e) in [
        (TopologySpec::Ring { n: 16 }, 0.07, 0.09),
        (TopologySpec::HeavyHex { rows: 2, cols: 7 }, 0.09, 0.09),
    ] {
        for day in 0..4 {
            let machine = Machine::from_spec(spec, 2019, day);
            let greedy_v = quality(&machine, CompilerConfig::greedy_v());
            let greedy_e = quality(&machine, CompilerConfig::greedy_e());
            let qiskit = quality(&machine, CompilerConfig::qiskit());
            assert!(
                greedy_v >= floor_v,
                "{} day {day}: GreedyV* quality {greedy_v} under floor {floor_v}",
                machine.name()
            );
            assert!(
                greedy_e >= floor_e,
                "{} day {day}: GreedyE* quality {greedy_e} under floor {floor_e}",
                machine.name()
            );
            // The calibration-aware heuristics must dominate the
            // topology-blind baseline by a wide margin off-grid.
            assert!(
                greedy_v > 2.0 * qiskit && greedy_e > 2.0 * qiskit,
                "{} day {day}: greedy ({greedy_v}/{greedy_e}) vs qiskit {qiskit}",
                machine.name()
            );
        }
    }
}

/// The GreedyV* hub (the highest-degree program qubit) must never be
/// seated on a heavy-hex bridge: bridges are degree-2 articulation
/// points, the worst possible home for the interaction graph's hub.
#[test]
fn greedy_v_hub_avoids_heavy_hex_bridges() {
    let (rows, cols) = (2, 7);
    let spec = TopologySpec::HeavyHex { rows, cols };
    for day in 0..6 {
        let machine = Machine::from_spec(spec, 2019, day);
        for b in [Benchmark::Bv4, Benchmark::Bv8, Benchmark::Hs6] {
            let circuit = b.circuit();
            let placement =
                nisq_core::mapping::greedy::place_vertex_first(&circuit, &machine).unwrap();
            let hub = circuit
                .interaction_graph()
                .qubits_by_degree()
                .into_iter()
                .next()
                .unwrap();
            assert!(
                placement.hw(hub).0 < rows * cols,
                "{b} day {day}: hub {hub:?} seated on bridge {}",
                placement.hw(hub)
            );
        }
    }
}
