//! Equivalence and determinism properties of the trial-program simulator:
//!
//! * the fused, relabeled trial program is amplitude-identical to a naive
//!   gate-by-gate state-vector replay on random circuits,
//! * the native SWAP op (relabeling fast path + materializing slow path)
//!   reproduces the `expand_swaps()` 3-CNOT program bit for bit under the
//!   full noise model,
//! * `u64`-bit-packed aggregation matches a `Vec<bool>`-keyed reference
//!   aggregation,
//! * results are deterministic per seed and invariant under thread count.
//!
//! Each property runs over a deterministic, seeded sample of circuits
//! (`proptest` is unavailable offline; see shims/README.md).

use nisq::prelude::*;
use nisq_ir::{random_circuit, Gate, GateKind, Qubit, RandomCircuitConfig};
use nisq_sim::{EngineOptions, NoiseModel, StateVector, TrialProgram};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

fn machine() -> Machine {
    Machine::ibmq16_on_day(2019, 0)
}

/// A random circuit with explicit SWAP gates sprinkled in, ending in
/// `measure_all` (whose terminal sampling leaves the state uncollapsed).
fn random_circuit_with_swaps(qubits: usize, gates: usize, seed: u64) -> Circuit {
    let base = random_circuit(RandomCircuitConfig {
        measure_all: false,
        ..RandomCircuitConfig::new(qubits, gates, seed)
    });
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5157);
    let mut c = Circuit::new(qubits);
    for (i, gate) in base.iter().enumerate() {
        c.push(gate.clone());
        if i % 4 == 3 {
            let a = rng.gen_range(0..qubits);
            let mut b = rng.gen_range(0..qubits - 1);
            if b >= a {
                b += 1;
            }
            c.push(Gate::swap(Qubit(a), Qubit(b)));
        }
    }
    c.measure_all();
    c
}

#[test]
fn fused_program_is_amplitude_identical_to_naive_replay() {
    let m = machine();
    for seed in 0..20u64 {
        let qubits = 2 + (seed as usize % 4);
        let circuit = random_circuit_with_swaps(qubits, 24 + (seed as usize * 7) % 40, seed);

        let program = TrialProgram::lower(&circuit, &m, &NoiseModel::ideal());
        let mut scratch = program.make_scratch();
        let mut rng = TrialProgram::trial_rng(0, 0);
        let _ = program.run_trial(&mut scratch, &mut rng);

        // Naive reference: apply every gate one by one, no fusion, no
        // relabeling, skipping the measurements (terminal sampling leaves
        // the program state uncollapsed, so the states must agree).
        let mut naive = StateVector::new(qubits);
        for gate in circuit.iter() {
            match gate.kind() {
                GateKind::Cnot => naive.apply_cnot(gate.qubits()[0].0, gate.qubits()[1].0),
                GateKind::Swap => naive.apply_swap(gate.qubits()[0].0, gate.qubits()[1].0),
                GateKind::Measure | GateKind::Barrier => {}
                kind => naive.apply_single(gate.qubits()[0].0, kind),
            }
        }

        // Compare amplitude by amplitude, mapping program qubit `i` through
        // its current state slot (relabeling swaps permute slots) on the
        // program side and through its hardware index on the naive side.
        let k = program.num_qubits();
        assert_eq!(k, qubits, "random circuits touch every qubit");
        for assignment in 0..1usize << k {
            let mut program_index = 0usize;
            let mut naive_index = 0usize;
            for i in 0..k {
                if assignment >> i & 1 == 1 {
                    program_index |= 1 << scratch.slot_of(i);
                    naive_index |= 1 << program.touched()[i];
                }
            }
            let a = scratch.state().amplitude(program_index);
            let b = naive.amplitude(naive_index);
            assert!(
                (a - b).norm_sqr() < 1e-20,
                "seed {seed}, assignment {assignment:b}: {a} vs {b}"
            );
        }
    }
}

#[test]
fn native_swaps_match_expanded_swaps_bit_for_bit() {
    // The native SWAP op (relabeling when no error fires, exact
    // materialization when one does) must reproduce the expanded 3-CNOT
    // program exactly — same seeds, same outcome counts — under full noise.
    let m = machine();
    for benchmark in [
        Benchmark::Bv4,
        Benchmark::Bv8,
        Benchmark::Toffoli,
        Benchmark::Adder,
    ] {
        let compiled = Compiler::new(&m, CompilerConfig::qiskit())
            .compile(&benchmark.circuit())
            .unwrap();
        let physical = compiled.physical_circuit();
        let expanded = physical.expand_swaps();
        for seed in [1u64, 7, 42] {
            let sim = Simulator::new(&m, SimulatorConfig::with_trials(512, seed));
            let native = sim.run(physical);
            let via_expansion = sim.run(&expanded);
            assert_eq!(
                native, via_expansion,
                "{benchmark} seed {seed}: native swaps diverged from expansion"
            );
        }
    }
}

#[test]
fn bitpacked_aggregation_matches_vec_bool_reference() {
    let m = machine();
    let circuit = random_circuit_with_swaps(4, 32, 3);
    let mut config = SimulatorConfig::with_trials(1024, 17);
    // Bit-level comparison against the run_trial reference: keep every
    // tier exact (tier-0 outcomes are statistically, not bitwise,
    // equivalent — pinned separately in tests/tiered_engine.rs).
    config.engine = EngineOptions::exact();
    let sim = Simulator::new(&m, config);

    // Reference: replay each trial directly and aggregate Vec<bool> keys.
    let program = sim.prepare(&circuit);
    let mut scratch = program.make_scratch();
    let mut reference: BTreeMap<Vec<bool>, u32> = BTreeMap::new();
    for trial in 0..config.trials {
        let mut rng = TrialProgram::trial_rng(config.seed, trial);
        let key = program.run_trial(&mut scratch, &mut rng);
        let bits: Vec<bool> = (0..program.num_clbits())
            .map(|i| key >> i & 1 == 1)
            .collect();
        *reference.entry(bits).or_insert(0) += 1;
    }

    let result = sim.run(&circuit);
    assert_eq!(result.counts(), &reference);
    assert_eq!(result.trials(), config.trials);
}

#[test]
fn random_circuit_results_are_deterministic_and_thread_invariant() {
    let m = machine();
    for seed in [0u64, 5, 11] {
        let circuit = random_circuit_with_swaps(5, 48, seed);
        let mut config = SimulatorConfig::with_trials(1030, seed);
        config.threads = 1;
        let serial = Simulator::new(&m, config).run(&circuit);
        let serial_again = Simulator::new(&m, config).run(&circuit);
        assert_eq!(serial, serial_again, "seed {seed} not deterministic");
        for threads in [2, 4, 8] {
            config.threads = threads;
            let parallel = Simulator::new(&m, config).run(&circuit);
            assert_eq!(
                serial, parallel,
                "seed {seed} diverged at {threads} threads"
            );
        }
    }
}
