//! End-to-end integration tests spanning every crate: IR benchmarks are
//! compiled by every Table 1 configuration onto calibrated machines, the
//! executables are simulated, and the paper's qualitative claims are
//! checked.

use nisq::prelude::*;

const TRIALS: u32 = 768;

fn machine(day: usize) -> Machine {
    Machine::ibmq16_on_day(2019, day)
}

fn success(machine: &Machine, config: CompilerConfig, benchmark: Benchmark, seed: u64) -> f64 {
    let compiled = Compiler::new(machine, config)
        .compile(&benchmark.circuit())
        .unwrap_or_else(|e| panic!("{} failed on {benchmark}: {e}", config.algorithm));
    Simulator::new(machine, SimulatorConfig::with_trials(TRIALS, seed))
        .success_rate(&compiled, &benchmark.expected_output())
}

#[test]
fn every_configuration_produces_runnable_executables_for_every_benchmark() {
    let m = machine(0);
    let sim = Simulator::new(&m, SimulatorConfig::ideal(16));
    for config in CompilerConfig::table1() {
        for benchmark in Benchmark::all() {
            let compiled = Compiler::new(&m, config)
                .compile(&benchmark.circuit())
                .unwrap_or_else(|e| panic!("{} failed on {benchmark}: {e}", config.algorithm));
            // The executable must compute the right answer when noiseless.
            let ideal = sim.run(compiled.physical_circuit());
            assert!(
                (ideal.probability_of(&benchmark.expected_output()) - 1.0).abs() < 1e-9,
                "{} mis-compiled {benchmark}",
                config.algorithm
            );
            // And it must respect the machine's connectivity.
            for gate in compiled.physical_circuit().expand_swaps().iter() {
                if gate.is_two_qubit() {
                    assert!(m
                        .topology()
                        .adjacent(HwQubit(gate.qubits()[0].0), HwQubit(gate.qubits()[1].0)));
                }
            }
        }
    }
}

#[test]
fn r_smt_star_beats_qiskit_on_average_success_rate() {
    // The paper's headline: geomean 2.9x improvement over Qiskit. We only
    // require a clear (>1.2x) average win to keep the test robust to
    // simulator statistics.
    let m = machine(0);
    let mut ratios = Vec::new();
    for benchmark in Benchmark::all() {
        let adaptive = success(&m, CompilerConfig::r_smt_star(0.5), benchmark, 5);
        let baseline = success(&m, CompilerConfig::qiskit(), benchmark, 5);
        ratios.push(adaptive / baseline.max(1e-3));
    }
    let log_mean: f64 = ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len() as f64;
    let geomean = log_mean.exp();
    assert!(
        geomean > 1.2,
        "R-SMT* only improved over Qiskit by {geomean:.2}x on geomean: {ratios:?}"
    );
}

#[test]
fn r_smt_star_is_at_least_as_good_as_t_smt_star_on_most_benchmarks() {
    let m = machine(1);
    let mut wins = 0usize;
    let benchmarks = Benchmark::all();
    for &benchmark in &benchmarks {
        let r = success(&m, CompilerConfig::r_smt_star(0.5), benchmark, 9);
        let t = success(
            &m,
            CompilerConfig::t_smt_star(RouteSelection::OneBendPaths),
            benchmark,
            9,
        );
        if r + 0.02 >= t {
            wins += 1;
        }
    }
    assert!(
        wins >= benchmarks.len() - 2,
        "R-SMT* lost to T-SMT* on too many benchmarks ({wins}/{} wins)",
        benchmarks.len()
    );
}

#[test]
fn zero_swap_benchmarks_are_more_reliable_than_swap_heavy_ones() {
    // Section 7: benchmarks that need no qubit movement (BV, HS, QFT, Adder)
    // have higher success than those that require swaps (Toffoli, Fredkin,
    // Or, Peres) under R-SMT*.
    let m = machine(0);
    let config = CompilerConfig::r_smt_star(0.5);
    let mut no_move = Vec::new();
    let mut movers = Vec::new();
    for benchmark in Benchmark::all() {
        let compiled = Compiler::new(&m, config)
            .compile(&benchmark.circuit())
            .unwrap();
        let s = Simulator::new(&m, SimulatorConfig::with_trials(TRIALS, 2))
            .success_rate(&compiled, &benchmark.expected_output());
        if compiled.swap_count() == 0 {
            no_move.push(s);
        } else {
            movers.push(s);
        }
    }
    assert!(!no_move.is_empty());
    let avg = |v: &Vec<f64>| v.iter().sum::<f64>() / v.len().max(1) as f64;
    if !movers.is_empty() {
        assert!(
            avg(&no_move) > avg(&movers),
            "zero-movement benchmarks ({:.3}) not more reliable than movers ({:.3})",
            avg(&no_move),
            avg(&movers)
        );
    }
}

#[test]
fn greedy_e_is_competitive_with_r_smt_star() {
    // Figure 10: GreedyE* is comparable to R-SMT* in success rate.
    let m = machine(0);
    let mut greedy_total = 0.0;
    let mut optimal_total = 0.0;
    for benchmark in Benchmark::all() {
        greedy_total += success(&m, CompilerConfig::greedy_e(), benchmark, 13);
        optimal_total += success(&m, CompilerConfig::r_smt_star(0.5), benchmark, 13);
    }
    assert!(
        greedy_total > 0.8 * optimal_total,
        "GreedyE* total {greedy_total:.2} fell far below R-SMT* total {optimal_total:.2}"
    );
}

#[test]
fn daily_recompilation_tracks_machine_drift() {
    // Figure 6's premise: compiling against the right day's calibration is
    // never much worse, and usually better, than reusing a stale mapping.
    let benchmark = Benchmark::Bv4;
    let mut adaptive_total = 0.0;
    let mut stale_total = 0.0;
    let stale = Compiler::new(&machine(0), CompilerConfig::r_smt_star(0.5))
        .compile(&benchmark.circuit())
        .unwrap();
    for day in 0..5 {
        let m = machine(day);
        let sim = Simulator::new(&m, SimulatorConfig::with_trials(TRIALS, 40 + day as u64));
        let fresh = Compiler::new(&m, CompilerConfig::r_smt_star(0.5))
            .compile(&benchmark.circuit())
            .unwrap();
        adaptive_total += sim.success_rate(&fresh, &benchmark.expected_output());
        stale_total += sim.success_rate(&stale, &benchmark.expected_output());
    }
    assert!(
        adaptive_total >= stale_total - 0.05,
        "daily recompilation ({adaptive_total:.2}) lost to a stale mapping ({stale_total:.2})"
    );
}

#[test]
fn compile_time_of_greedy_is_far_below_the_exact_solver_on_large_circuits() {
    use nisq_ir::{random_circuit, RandomCircuitConfig};
    use std::time::{Duration, Instant};
    let topology = GridTopology::at_least(16);
    let calibration = CalibrationGenerator::new(topology.clone(), 1).day(0);
    let m = Machine::new("synthetic-16", topology, calibration);
    let circuit = random_circuit(RandomCircuitConfig::new(16, 192, 3));

    let start = Instant::now();
    Compiler::new(&m, CompilerConfig::greedy_e())
        .compile(&circuit)
        .unwrap();
    let greedy = start.elapsed();

    let exact_config =
        CompilerConfig::r_smt_star(0.5).with_solver_budget(u64::MAX, Some(Duration::from_secs(3)));
    let start = Instant::now();
    Compiler::new(&m, exact_config).compile(&circuit).unwrap();
    let exact = start.elapsed();

    assert!(
        exact > greedy,
        "expected the exact solver ({exact:?}) to take longer than GreedyE* ({greedy:?})"
    );
}

#[test]
fn qasm_round_trip_preserves_the_compiled_program() {
    let m = machine(0);
    for benchmark in [Benchmark::Bv4, Benchmark::Hs4, Benchmark::Adder] {
        let compiled = Compiler::new(&m, CompilerConfig::greedy_v())
            .compile(&benchmark.circuit())
            .unwrap();
        let parsed = nisq::ir::qasm::parse(&compiled.qasm()).unwrap();
        // Re-simulating the parsed program must give the same answer.
        let sim = Simulator::new(&m, SimulatorConfig::ideal(16));
        let result = sim.run(&parsed);
        assert!(
            (result.probability_of(&benchmark.expected_output()) - 1.0).abs() < 1e-9,
            "{benchmark} changed behaviour after a QASM round trip"
        );
    }
}
