//! Constraint-by-constraint validation of the paper's optimization model
//! (Section 4) against the artifacts the compiler actually produces.

use nisq::prelude::*;
use nisq_ir::GateKind;
use nisq_machine::EdgeId;

fn compile(benchmark: Benchmark, config: CompilerConfig, day: usize) -> (Machine, CompiledCircuit) {
    let machine = Machine::ibmq16_on_day(2019, day);
    let compiled = Compiler::new(&machine, config)
        .compile(&benchmark.circuit())
        .expect("benchmark compiles");
    (machine, compiled)
}

#[test]
fn constraint_1_and_2_every_program_qubit_on_a_distinct_hardware_qubit() {
    for config in CompilerConfig::table1() {
        for benchmark in Benchmark::all() {
            let (machine, compiled) = compile(benchmark, config, 0);
            let placement = compiled.placement();
            assert_eq!(placement.len(), benchmark.circuit().num_qubits());
            placement.validate(machine.num_qubits()).unwrap();
            for &hw in placement.as_slice() {
                assert!(machine.topology().contains(hw));
            }
        }
    }
}

#[test]
fn constraint_3_gates_start_after_their_dependencies_finish() {
    for config in CompilerConfig::table1() {
        let benchmark = Benchmark::Adder;
        let circuit = benchmark.circuit();
        let (_, compiled) = compile(benchmark, config, 0);
        let dag = circuit.dag();
        for entry in &compiled.schedule().gates {
            for &pred in dag.predecessors(entry.gate_index) {
                let pred_entry = compiled.schedule().entry(pred).unwrap();
                assert!(
                    entry.start >= pred_entry.finish(),
                    "{}: gate {} starts at {} before dependency {} finishes at {}",
                    config.algorithm,
                    entry.gate_index,
                    entry.start,
                    pred,
                    pred_entry.finish()
                );
            }
        }
    }
}

#[test]
fn constraint_5_cnot_durations_reflect_calibration_data() {
    // For a calibration-aware config, a direct CNOT's scheduled duration must
    // equal the calibrated duration of the hardware edge it runs on.
    let (machine, compiled) = compile(Benchmark::Bv4, CompilerConfig::r_smt_star(0.5), 0);
    let circuit = Benchmark::Bv4.circuit();
    for entry in &compiled.schedule().gates {
        let gate = &circuit.gates()[entry.gate_index];
        if gate.kind() != GateKind::Cnot {
            continue;
        }
        let route = entry.route.as_ref().unwrap();
        if route.is_direct() {
            let edge = EdgeId::new(route.path[0], route.path[1]);
            let expected = machine.calibration().durations.cnot(edge).unwrap();
            assert_eq!(entry.duration, expected);
        } else {
            // Routed CNOTs include swap-out and swap-back time, so they must
            // be strictly longer than any single CNOT on the machine.
            let max_single = machine
                .calibration()
                .durations
                .cnot_slots
                .values()
                .max()
                .copied()
                .unwrap();
            assert!(entry.duration > max_single);
        }
    }
}

#[test]
fn constraint_4_and_6_gates_finish_within_coherence_windows() {
    // The paper notes every benchmark finishes well inside the coherence
    // window; the scheduler must agree for every configuration.
    for config in CompilerConfig::table1() {
        for benchmark in Benchmark::all() {
            let (machine, compiled) = compile(benchmark, config, 0);
            assert!(
                compiled.within_coherence(),
                "{} exceeded coherence on {benchmark}",
                config.algorithm
            );
            // And the overall makespan stays below the worst qubit's T2.
            assert!(
                compiled.duration_slots() < machine.calibration().worst_t2_slots(),
                "{} makespan {} too long on {benchmark}",
                config.algorithm,
                compiled.duration_slots()
            );
        }
    }
}

#[test]
fn constraints_7_to_9_spatially_overlapping_cnots_never_overlap_in_time() {
    for config in CompilerConfig::table1() {
        let benchmark = Benchmark::Hs6;
        let circuit = benchmark.circuit();
        let (_, compiled) = compile(benchmark, config, 0);
        let schedule = compiled.schedule();
        let cnot_entries: Vec<_> = schedule
            .gates
            .iter()
            .filter(|e| circuit.gates()[e.gate_index].kind() == GateKind::Cnot)
            .collect();
        for (i, a) in cnot_entries.iter().enumerate() {
            for b in cnot_entries.iter().skip(i + 1) {
                let ra = a.route.as_ref().unwrap();
                let rb = b.route.as_ref().unwrap();
                let share_resources = ra.reserved.iter().any(|q| rb.reserved.contains(q));
                let overlap_in_time = a.start < b.finish() && b.start < a.finish();
                assert!(
                    !(share_resources && overlap_in_time),
                    "{}: CNOTs {} and {} overlap in space and time",
                    config.algorithm,
                    a.gate_index,
                    b.gate_index
                );
            }
        }
    }
}

#[test]
fn constraints_10_and_11_reliability_tracking_matches_the_machine_model() {
    // The compiler's analytic estimate must equal the product of the
    // per-operation reliabilities computed directly from calibration data.
    let (machine, compiled) = compile(Benchmark::Bv4, CompilerConfig::r_smt_star(0.5), 0);
    let circuit = Benchmark::Bv4.circuit();
    let calibration = machine.calibration();
    let mut expected = 1.0;
    for entry in &compiled.schedule().gates {
        let gate = &circuit.gates()[entry.gate_index];
        match gate.kind() {
            GateKind::Cnot => {
                let route = entry.route.as_ref().unwrap();
                for (i, pair) in route.path.windows(2).enumerate() {
                    let rel = calibration.cnot_reliability(pair[0], pair[1]).unwrap();
                    expected *= if i + 2 == route.path.len() {
                        rel
                    } else {
                        rel.powi(3)
                    };
                }
            }
            GateKind::Measure => {
                expected *=
                    calibration.readout_reliability(compiled.placement().hw(gate.qubits()[0]));
            }
            _ => {}
        }
    }
    assert!((compiled.estimated_reliability() - expected).abs() < 1e-9);
}

#[test]
fn equation_12_omega_extremes_change_the_optimization_target() {
    // With omega = 1 only readout reliability matters; with omega = 0 only
    // CNOT reliability matters. The placements should reflect that: the
    // omega = 1 mapping must have readout reliability at least as good as
    // the omega = 0 mapping, and vice versa for CNOT reliability.
    let machine = Machine::ibmq16_on_day(2019, 0);
    let circuit = Benchmark::Bv4.circuit();
    let readout_only = Compiler::new(&machine, CompilerConfig::r_smt_star(1.0))
        .compile(&circuit)
        .unwrap();
    let cnot_only = Compiler::new(&machine, CompilerConfig::r_smt_star(0.0))
        .compile(&circuit)
        .unwrap();
    assert!(readout_only.estimate().readout >= cnot_only.estimate().readout - 1e-9);
    assert!(cnot_only.estimate().cnot >= readout_only.estimate().cnot - 1e-9);
}
