//! Crash-recovery suite for the write-ahead sweep journal.
//!
//! Simulates the crash in-process with [`RunControl`]'s deterministic
//! cell-count cut (the CI smoke test delivers a real SIGKILL), then
//! resumes and checks the invariant the journal exists for: a resumed
//! run's report is canonically bit-identical to an uninterrupted one.
//! The battery also covers the hostile-file cases — torn tails,
//! checksum corruption, duplicates, foreign plans, files that are not
//! journals at all — and disk-full degradation mid-sweep.

use nisq::exp::{fnv64, Journal, JournalError};
use nisq::prelude::*;
use std::fs;
use std::path::PathBuf;

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("nisq-journal-resume-test");
    fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// An 8-cell plan (2 benchmarks x 2 mappers x 2 days) small enough to
/// recompute many times. Per-cell sim seeds stay at their deterministic
/// defaults, so every run of it is bit-identical.
fn plan() -> SweepPlan {
    SweepPlan::new()
        .benchmark(Benchmark::Bv4)
        .benchmark(Benchmark::Hs2)
        .config("Qiskit", CompilerConfig::qiskit())
        .config("R-SMT*", CompilerConfig::r_smt_star(0.5))
        .days(vec![0, 1])
        .with_trials(32)
}

fn reference_canonical(plan: &SweepPlan) -> String {
    Session::new().run(plan).unwrap().to_json_line_canonical()
}

/// Frames a payload the way the journal does — for forging records.
fn frame(payload: &str) -> String {
    format!(
        "J1 {} {:016x} {payload}\n",
        payload.len(),
        fnv64(payload.as_bytes())
    )
}

#[test]
fn resume_is_bit_identical_at_every_kill_point() {
    let plan = plan();
    let reference = reference_canonical(&plan);
    for kill_after in [1usize, 3, 5, 7] {
        let path = temp_path(&format!("kill-{kill_after}.journal"));
        let mut journal = Journal::create(&path, plan.machine_seed(), plan.trials()).unwrap();
        let control = RunControl::unbounded().with_stop_after_cells(kill_after);
        let cut = Session::new()
            .run_journaled(&plan, &control, &mut journal)
            .unwrap();
        assert!(!cut.completed);
        assert_eq!(cut.report.cells.len(), kill_after);
        drop(journal);

        // A fresh session and journal stand in for the restarted process.
        let mut journal = Journal::resume(&path, plan.machine_seed(), plan.trials()).unwrap();
        assert_eq!(journal.completed_cells(), kill_after);
        assert_eq!(journal.recovery().truncated_bytes, 0);
        let resumed = Session::new()
            .run_journaled(&plan, &RunControl::unbounded(), &mut journal)
            .unwrap();
        assert!(resumed.completed);
        assert_eq!(resumed.report.resumed_cells, kill_after as u64);
        assert_eq!(resumed.report.cache.journal_hits, kill_after as u64);
        assert_eq!(resumed.report.journal_hash, journal.path_hash());
        assert_eq!(resumed.report.to_json_line_canonical(), reference);
    }
}

#[test]
fn torn_trailing_record_is_truncated_and_recomputed() {
    let plan = plan();
    let reference = reference_canonical(&plan);
    let path = temp_path("torn.journal");
    let mut journal = Journal::create(&path, plan.machine_seed(), plan.trials()).unwrap();
    let control = RunControl::unbounded().with_stop_after_cells(4);
    Session::new()
        .run_journaled(&plan, &control, &mut journal)
        .unwrap();
    drop(journal);

    // A crash mid-append leaves a half-written record with no terminator.
    let intact = fs::read(&path).unwrap();
    let mut torn = intact.clone();
    torn.extend_from_slice(b"J1 242 0123456789abcdef {\"kind\": \"cell\", \"key\": {");
    fs::write(&path, &torn).unwrap();

    let mut journal = Journal::resume(&path, plan.machine_seed(), plan.trials()).unwrap();
    assert_eq!(
        journal.recovery().truncated_bytes,
        (torn.len() - intact.len()) as u64
    );
    assert_eq!(journal.completed_cells(), 4);
    // Truncation restored the intact prefix byte for byte.
    assert_eq!(fs::read(&path).unwrap(), intact);
    let resumed = Session::new()
        .run_journaled(&plan, &RunControl::unbounded(), &mut journal)
        .unwrap();
    assert_eq!(resumed.report.resumed_cells, 4);
    assert_eq!(resumed.report.to_json_line_canonical(), reference);
}

#[test]
fn checksum_corrupt_trailing_record_is_truncated_and_recomputed() {
    let plan = plan();
    let reference = reference_canonical(&plan);
    let path = temp_path("corrupt.journal");
    let mut journal = Journal::create(&path, plan.machine_seed(), plan.trials()).unwrap();
    let control = RunControl::unbounded().with_stop_after_cells(3);
    Session::new()
        .run_journaled(&plan, &control, &mut journal)
        .unwrap();
    drop(journal);

    // Flip one payload byte of the final (cell) record: framing still
    // reads, the checksum does not.
    let mut bytes = fs::read(&path).unwrap();
    let flip_at = bytes.len() - 3;
    bytes[flip_at] ^= 0x01;
    fs::write(&path, &bytes).unwrap();

    let mut journal = Journal::resume(&path, plan.machine_seed(), plan.trials()).unwrap();
    assert!(journal.recovery().truncated_bytes > 0);
    // The corrupt record was the third cell; its intent now dangles.
    assert_eq!(journal.completed_cells(), 2);
    assert_eq!(journal.recovery().orphan_intents, 1);
    let resumed = Session::new()
        .run_journaled(&plan, &RunControl::unbounded(), &mut journal)
        .unwrap();
    assert_eq!(resumed.report.resumed_cells, 2);
    assert_eq!(resumed.report.to_json_line_canonical(), reference);
}

#[test]
fn empty_and_missing_journals_behave_like_fresh_ones() {
    let plan = plan();
    let reference = reference_canonical(&plan);
    for name in ["empty.journal", "missing.journal"] {
        let path = temp_path(name);
        if name.starts_with("empty") {
            fs::write(&path, b"").unwrap();
        } else {
            let _ = fs::remove_file(&path);
        }
        let mut journal = Journal::resume(&path, plan.machine_seed(), plan.trials()).unwrap();
        assert_eq!(journal.completed_cells(), 0);
        assert_eq!(journal.recovery(), Default::default());
        let resumed = Session::new()
            .run_journaled(&plan, &RunControl::unbounded(), &mut journal)
            .unwrap();
        assert_eq!(resumed.report.resumed_cells, 0);
        assert_eq!(resumed.report.to_json_line_canonical(), reference);
    }
}

#[test]
fn journal_from_a_different_plan_misses_every_cell() {
    let journaled_plan = plan();
    let path = temp_path("foreign.journal");
    let mut journal = Journal::create(
        &path,
        journaled_plan.machine_seed(),
        journaled_plan.trials(),
    )
    .unwrap();
    Session::new()
        .run_journaled(&journaled_plan, &RunControl::unbounded(), &mut journal)
        .unwrap();
    drop(journal);

    // A different trial count changes every cell key, so nothing matches —
    // the run recomputes everything and still reports correctly.
    let other_plan = plan().with_trials(64);
    let reference = reference_canonical(&other_plan);
    let mut journal =
        Journal::resume(&path, other_plan.machine_seed(), other_plan.trials()).unwrap();
    assert_eq!(journal.completed_cells(), 8);
    let resumed = Session::new()
        .run_journaled(&other_plan, &RunControl::unbounded(), &mut journal)
        .unwrap();
    assert_eq!(resumed.report.resumed_cells, 0);
    assert_eq!(resumed.report.to_json_line_canonical(), reference);
    // The foreign records stay on file alongside the new plan's cells.
    assert_eq!(journal.completed_cells(), 16);
}

#[test]
fn duplicate_cell_records_resolve_last_write_wins() {
    let plan = SweepPlan::new()
        .benchmark(Benchmark::Bv4)
        .config("Qiskit", CompilerConfig::qiskit())
        .with_trials(32);
    let path = temp_path("duplicate.journal");
    let mut journal = Journal::create(&path, plan.machine_seed(), plan.trials()).unwrap();
    Session::new()
        .run_journaled(&plan, &RunControl::unbounded(), &mut journal)
        .unwrap();
    drop(journal);

    // Forge a duplicate of the completed cell record with a doctored
    // success rate (correctly framed, so it parses and checksums).
    let text = fs::read_to_string(&path).unwrap();
    let cell_line = text
        .lines()
        .rev()
        .find(|line| line.contains("\"kind\": \"cell\""))
        .unwrap();
    let payload = &cell_line[cell_line.find('{').unwrap()..];
    let marker = "\"success_rate\": ";
    let start = payload.find(marker).unwrap() + marker.len();
    let end = start + payload[start..].find(',').unwrap();
    let doctored = format!("{}0.125{}", &payload[..start], &payload[end..]);
    fs::write(&path, format!("{text}{}", frame(&doctored))).unwrap();

    let mut journal = Journal::resume(&path, plan.machine_seed(), plan.trials()).unwrap();
    assert_eq!(journal.completed_cells(), 1);
    let resumed = Session::new()
        .run_journaled(&plan, &RunControl::unbounded(), &mut journal)
        .unwrap();
    assert_eq!(resumed.report.resumed_cells, 1);
    assert_eq!(resumed.report.cells[0].success_rate, Some(0.125));
}

#[test]
fn disk_full_mid_sweep_degrades_without_losing_the_report() {
    let plan = plan();
    let reference = reference_canonical(&plan);
    let path = temp_path("degraded.journal");
    let mut journal = Journal::create(&path, plan.machine_seed(), plan.trials()).unwrap();
    // Allow header + intent + cell + the second cell's intent, then fail:
    // the second cell's completion is lost, journaling stops, the sweep
    // does not.
    journal.fail_appends_after(4);
    let outcome = Session::new()
        .run_journaled(&plan, &RunControl::unbounded(), &mut journal)
        .unwrap();
    assert!(outcome.completed);
    assert_eq!(outcome.report.cells.len(), 8);
    assert!(journal.degraded().unwrap().contains("no space left"));
    assert_eq!(outcome.report.to_json_line_canonical(), reference);
    drop(journal);

    // What made it to disk is still a valid journal: one completed cell,
    // one orphan intent, and a clean resume that finishes the plan.
    let mut journal = Journal::resume(&path, plan.machine_seed(), plan.trials()).unwrap();
    assert_eq!(journal.completed_cells(), 1);
    assert_eq!(journal.recovery().orphan_intents, 1);
    assert_eq!(journal.recovery().truncated_bytes, 0);
    let resumed = Session::new()
        .run_journaled(&plan, &RunControl::unbounded(), &mut journal)
        .unwrap();
    assert_eq!(resumed.report.resumed_cells, 1);
    assert_eq!(resumed.report.to_json_line_canonical(), reference);
}

#[test]
fn inspect_summarizes_without_touching_the_file() {
    let plan = plan();
    let path = temp_path("inspect.journal");
    let mut journal = Journal::create(&path, plan.machine_seed(), plan.trials()).unwrap();
    let control = RunControl::unbounded().with_stop_after_cells(4);
    Session::new()
        .run_journaled(&plan, &control, &mut journal)
        .unwrap();
    drop(journal);

    let intact = fs::read(&path).unwrap();
    let info = Journal::inspect(&path).unwrap();
    assert_eq!(info.machine_seed, Some(plan.machine_seed()));
    assert_eq!(info.trials, Some(u64::from(plan.trials())));
    // Header + 4 intents + 4 cells.
    assert_eq!(info.records, 9);
    assert_eq!(info.cell_records, 4);
    assert_eq!(info.intent_records, 4);
    assert_eq!(info.unique_cells, 4);
    assert_eq!(info.orphan_intents, 0);
    // Compaction would drop the 4 completed intents.
    assert_eq!(info.dead_records, 4);
    assert_eq!(info.torn_tail_offset, None);
    assert_eq!(info.file_bytes, intact.len() as u64);
    // Inspection is read-only, even for a torn file.
    fs::write(&path, [&intact[..], b"J1 99 0000 {half"].concat()).unwrap();
    let info = Journal::inspect(&path).unwrap();
    assert_eq!(info.torn_tail_offset, Some(intact.len() as u64));
    assert_eq!(info.unique_cells, 4);
    assert_eq!(
        fs::read(&path).unwrap().len(),
        intact.len() + b"J1 99 0000 {half".len()
    );
    // Not-a-journal files are typed errors here too.
    let bogus = temp_path("inspect-bogus.txt");
    fs::write(&bogus, b"notes\n").unwrap();
    assert!(matches!(
        Journal::inspect(&bogus),
        Err(JournalError::NotAJournal { .. })
    ));
}

#[test]
fn compact_drops_dead_records_and_preserves_resume_identity() {
    let plan = plan();
    let reference = reference_canonical(&plan);
    let path = temp_path("compact.journal");
    let mut journal = Journal::create(&path, plan.machine_seed(), plan.trials()).unwrap();
    Session::new()
        .run_journaled(&plan, &RunControl::unbounded(), &mut journal)
        .unwrap();
    // A full 8-cell run leaves 8 completed intents as dead weight.
    assert_eq!(journal.dead_records(), 8);
    drop(journal);

    let before = fs::metadata(&path).unwrap().len();
    let info = Journal::compact(&path).unwrap();
    assert_eq!(info.kept_cells, 8);
    assert_eq!(info.dropped_records, 8);
    assert_eq!(info.bytes_before, before);
    assert!(info.bytes_after < info.bytes_before);
    assert_eq!(fs::metadata(&path).unwrap().len(), info.bytes_after);
    // No leftover temporary file.
    assert!(!path.with_extension("journal.compact-tmp").exists());

    // The compacted journal scans clean and resumes bit-identically.
    let inspected = Journal::inspect(&path).unwrap();
    assert_eq!(inspected.records, 9);
    assert_eq!(inspected.dead_records, 0);
    assert_eq!(inspected.torn_tail_offset, None);
    let mut journal = Journal::resume(&path, plan.machine_seed(), plan.trials()).unwrap();
    assert_eq!(journal.completed_cells(), 8);
    let resumed = Session::new()
        .run_journaled(&plan, &RunControl::unbounded(), &mut journal)
        .unwrap();
    assert_eq!(resumed.report.resumed_cells, 8);
    assert_eq!(resumed.report.to_json_line_canonical(), reference);

    // Compacting the already-compact file drops nothing further.
    let again = Journal::compact(&path).unwrap();
    assert_eq!(again.dropped_records, 0);
    assert_eq!(again.kept_cells, 8);
}

#[test]
fn compact_in_place_resets_dead_tracking_mid_session() {
    let plan = plan();
    let reference = reference_canonical(&plan);
    let path = temp_path("compact-in-place.journal");
    let mut journal = Journal::create(&path, plan.machine_seed(), plan.trials()).unwrap();
    let control = RunControl::unbounded().with_stop_after_cells(5);
    Session::new()
        .run_journaled(&plan, &control, &mut journal)
        .unwrap();
    assert_eq!(journal.dead_records(), 5);
    assert!(journal.compact_in_place());
    assert_eq!(journal.dead_records(), 0);
    // The same open journal keeps appending after the in-place rewrite.
    let finished = Session::new()
        .run_journaled(&plan, &RunControl::unbounded(), &mut journal)
        .unwrap();
    assert!(finished.completed);
    assert_eq!(finished.report.resumed_cells, 5);
    assert_eq!(finished.report.to_json_line_canonical(), reference);
    drop(journal);
    let mut journal = Journal::resume(&path, plan.machine_seed(), plan.trials()).unwrap();
    assert_eq!(journal.completed_cells(), 8);
    let resumed = Session::new()
        .run_journaled(&plan, &RunControl::unbounded(), &mut journal)
        .unwrap();
    assert_eq!(resumed.report.to_json_line_canonical(), reference);
}

#[test]
fn absorb_reuses_completed_cells_across_journals() {
    let plan = plan();
    let reference = reference_canonical(&plan);
    let donor = temp_path("absorb-donor.journal");
    let mut journal = Journal::create(&donor, plan.machine_seed(), plan.trials()).unwrap();
    Session::new()
        .run_journaled(&plan, &RunControl::unbounded(), &mut journal)
        .unwrap();
    drop(journal);

    // A fresh journal absorbs all eight cells and replays them without
    // recomputation, canonically identical to an undisturbed run.
    let fresh = temp_path("absorb-fresh.journal");
    let _ = fs::remove_file(&fresh);
    let mut journal = Journal::create(&fresh, plan.machine_seed(), plan.trials()).unwrap();
    assert_eq!(journal.absorb(&donor).unwrap(), 8);
    assert_eq!(journal.completed_cells(), 8);
    // Absorbing again is a no-op: every key is already held.
    assert_eq!(journal.absorb(&donor).unwrap(), 0);
    let resumed = Session::new()
        .run_journaled(&plan, &RunControl::unbounded(), &mut journal)
        .unwrap();
    assert_eq!(resumed.report.resumed_cells, 8);
    assert_eq!(resumed.report.to_json_line_canonical(), reference);
    drop(journal);

    // Absorbing from a non-journal is a typed error that leaves the
    // absorbing journal unchanged.
    let bogus = temp_path("absorb-bogus.txt");
    fs::write(&bogus, b"notes\n").unwrap();
    let mut journal = Journal::resume(&fresh, plan.machine_seed(), plan.trials()).unwrap();
    let held = journal.completed_cells();
    assert!(journal.absorb(&bogus).is_err());
    assert_eq!(journal.completed_cells(), held);
}

#[test]
fn files_that_are_not_journals_are_refused_untouched() {
    let path = temp_path("not-a-journal.txt");
    let contents = b"just some notes\nnothing framed\n".to_vec();
    fs::write(&path, &contents).unwrap();
    let err = Journal::resume(&path, 2019, 32).unwrap_err();
    assert!(matches!(err, JournalError::NotAJournal { .. }), "{err}");
    assert!(err.to_string().contains("not a sweep journal"), "{err}");
    // Refusal must not modify the file.
    assert_eq!(fs::read(&path).unwrap(), contents);

    // Same for a journal-magic file carrying a foreign schema tag.
    let foreign = temp_path("foreign-schema.journal");
    let payload = "{\"kind\": \"header\", \"schema\": \"other-journal/v9\"}";
    fs::write(&foreign, frame(payload)).unwrap();
    let err = Journal::resume(&foreign, 2019, 32).unwrap_err();
    assert!(matches!(err, JournalError::NotAJournal { .. }), "{err}");
}
