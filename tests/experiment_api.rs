//! Integration tests of the experiment API's caching contract:
//!
//! * the full-compile cache hits on identical `(circuit, machine-day,
//!   config)` triples and misses when any component changes,
//! * cached compiles are bit-identical to cold compiles — including when
//!   only the *placement* came from the pass-level cache,
//! * a fig6-style day sweep over the Table-1 configurations shows cache
//!   hits and strictly fewer placement-pass invocations than compiles (the
//!   ROADMAP's pass-level-caching item).

use nisq::prelude::*;
use std::sync::Arc;

const SEED: u64 = 2019;

fn machine(day: usize) -> Arc<Machine> {
    Arc::new(Machine::ibmq16_on_day(SEED, day))
}

/// Asserts two compiled circuits are bit-identical in every observable
/// artifact (placement, schedule metrics, physical gates, reliability bits,
/// emitted OpenQASM).
fn assert_identical(a: &CompiledCircuit, b: &CompiledCircuit, what: &str) {
    assert_eq!(
        a.placement().as_slice(),
        b.placement().as_slice(),
        "{what}: placement"
    );
    assert_eq!(a.swap_count(), b.swap_count(), "{what}: swaps");
    assert_eq!(a.duration_slots(), b.duration_slots(), "{what}: makespan");
    assert_eq!(
        a.physical_circuit(),
        b.physical_circuit(),
        "{what}: physical circuit"
    );
    assert_eq!(
        a.estimated_reliability().to_bits(),
        b.estimated_reliability().to_bits(),
        "{what}: reliability bits"
    );
    assert_eq!(a.qasm(), b.qasm(), "{what}: OpenQASM");
}

#[test]
fn compile_cache_hits_on_identical_triples() {
    let mut session = Session::new();
    let m = session.machine(TopologySpec::Ibmq16, SEED, 0);
    let config = CompilerConfig::greedy_e();
    let circuit = Benchmark::Toffoli.circuit();

    let first = session.compile(&m, &config, &circuit).unwrap();
    let second = session.compile(&m, &config, &circuit).unwrap();
    assert!(
        Arc::ptr_eq(&first, &second),
        "second compile must be served from cache"
    );
    let stats = session.cache_stats();
    assert_eq!(stats.compile_requests, 2);
    assert_eq!(stats.compile_hits, 1);
}

#[test]
fn compile_cache_misses_across_days_and_configs() {
    let mut session = Session::new();
    let day0 = session.machine(TopologySpec::Ibmq16, SEED, 0);
    let day3 = session.machine(TopologySpec::Ibmq16, SEED, 3);
    let circuit = Benchmark::Bv8.circuit();

    let a = session
        .compile(&day0, &CompilerConfig::greedy_e(), &circuit)
        .unwrap();
    let b = session
        .compile(&day3, &CompilerConfig::greedy_e(), &circuit)
        .unwrap();
    let c = session
        .compile(&day0, &CompilerConfig::greedy_v(), &circuit)
        .unwrap();
    assert!(
        !Arc::ptr_eq(&a, &b),
        "different days must not share a compile"
    );
    assert!(
        !Arc::ptr_eq(&a, &c),
        "different configs must not share a compile"
    );
    assert_eq!(session.cache_stats().compile_hits, 0);

    // Different omegas are different configs too.
    let w5 = session
        .compile(&day0, &CompilerConfig::r_smt_star(0.5), &circuit)
        .unwrap();
    let w9 = session
        .compile(&day0, &CompilerConfig::r_smt_star(0.9), &circuit)
        .unwrap();
    assert!(!Arc::ptr_eq(&w5, &w9));
    assert_eq!(session.cache_stats().compile_hits, 0);
}

#[test]
fn cached_compiles_are_bit_identical_to_cold_compiles() {
    let m = machine(0);
    for config in CompilerConfig::table1() {
        let mut session = Session::new();
        let label = config.algorithm.name();
        for b in [Benchmark::Bv4, Benchmark::Toffoli, Benchmark::Adder] {
            let circuit = b.circuit();
            let cold = Compiler::new(&m, config).compile(&circuit).unwrap();
            let warm1 = session.compile(&m, &config, &circuit).unwrap();
            let warm2 = session.compile(&m, &config, &circuit).unwrap();
            assert_identical(&cold, &warm1, &format!("{label}/{b} cold vs miss"));
            assert_identical(&cold, &warm2, &format!("{label}/{b} cold vs hit"));
        }
    }
}

#[test]
fn placement_cache_reuse_across_days_is_exact_for_unaware_configs() {
    // Calibration-unaware configs key their placement on the topology
    // alone, so a day sweep reuses the day-0 placement. The full compile
    // for the new day must still be bit-identical to a cold compile on
    // that day (schedule and estimate see the new calibration).
    let mut session = Session::new();
    for config in [
        CompilerConfig::qiskit(),
        CompilerConfig::t_smt(RouteSelection::RectangleReservation),
    ] {
        let circuit = Benchmark::Hs6.circuit();
        let day0 = session.machine(TopologySpec::Ibmq16, SEED, 0);
        let day4 = session.machine(TopologySpec::Ibmq16, SEED, 4);
        session.compile(&day0, &config, &circuit).unwrap();
        let place_hits_before = session.cache_stats().place_hits;
        let warm = session.compile(&day4, &config, &circuit).unwrap();
        assert!(
            session.cache_stats().place_hits > place_hits_before,
            "{config}: day-4 compile should reuse the day-0 placement"
        );
        let cold = Compiler::new(&machine(4), config)
            .compile(&circuit)
            .unwrap();
        assert_identical(&cold, &warm, &format!("{config} day-4"));
    }
}

#[test]
fn day_sweep_shows_cache_hits_and_fewer_placement_passes() {
    // The acceptance shape: a fig6-style day sweep over the Table-1
    // configurations. Calibration-unaware placements are computed once,
    // not once per day, so placement passes < compiles and hits > 0.
    let days = 4usize;
    let plan = SweepPlan::new()
        .benchmarks(Benchmark::representative())
        .table1_configs()
        .days(0..days);
    let report = Session::new().run(&plan).unwrap();

    assert_eq!(report.cells.len(), 3 * 6 * days);
    assert_eq!(report.cache.compile_requests as usize, report.cells.len());
    assert!(
        report.cache.total_hits() > 0,
        "a day sweep must produce cache hits, got {:?}",
        report.cache
    );
    assert!(
        report.cache.place_runs < report.cache.compile_requests,
        "placement passes ({}) must be strictly fewer than compiles ({})",
        report.cache.place_runs,
        report.cache.compile_requests
    );
    // Two of six Table-1 configs are calibration-unaware; their placements
    // for days 1.. are all placement-cache hits.
    assert_eq!(report.cache.place_hits as usize, 3 * 2 * (days - 1));
}

#[test]
fn executed_reports_round_trip_through_json() {
    let plan = SweepPlan::new()
        .benchmarks([Benchmark::Bv4, Benchmark::Hs2])
        .config("Qiskit", CompilerConfig::qiskit())
        .config("GreedyE*", CompilerConfig::greedy_e())
        .days([0, 2])
        .with_trials(64);
    let report = Session::new().run(&plan).unwrap();
    let parsed = Report::from_json(&report.to_json()).unwrap();
    assert_eq!(parsed, report);
    assert_eq!(parsed.cells.len(), 2 * 2 * 2);
    assert!(parsed.cells.iter().all(|c| c.success_rate.is_some()));
}

#[test]
fn session_sweep_matches_direct_compile_and_simulate() {
    // The declarative path must reproduce exactly what the hand-rolled
    // compile-then-simulate loop measures for the same seeds.
    let b = Benchmark::Peres;
    let config = CompilerConfig::r_smt_star(0.5);
    let m = machine(0);
    let compiled = Compiler::new(&m, config).compile(&b.circuit()).unwrap();
    let direct = Simulator::new(&m, SimulatorConfig::with_trials(512, 99))
        .success_rate(&compiled, &b.expected_output());

    let plan = SweepPlan::new()
        .benchmark(b)
        .config("R-SMT*", config)
        .with_trials(512)
        .fixed_sim_seed(99);
    let report = Session::new().run(&plan).unwrap();
    assert_eq!(report.require("Peres", "R-SMT*", 0).success(), direct);
}
