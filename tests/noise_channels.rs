//! Physics and backend-selection properties of the declarative
//! `nisq-noise` channel subsystem:
//!
//! * **analytic output** — amplitude-damping and Pauli-weighted channels
//!   reproduce the closed-form single-qubit outcome probabilities within
//!   fixed-seed frequency bounds, on both the measure-bound (bare Kraus)
//!   and gate-bound (fused `K·U`) paths;
//! * **backend selection** — a Pauli-only spec keeps the stabilizer
//!   tableau backend and tier-0 occupancy on Clifford executables, while
//!   any non-Pauli binding forces the dense backend with every trial
//!   served by full replay;
//! * **cross-backend equivalence** — with a Pauli-only spec the tableau
//!   fast path and the dense-exact engine sample the same distribution
//!   (total variation within the sampling bound at fixed seeds);
//! * **determinism** — Kraus-channel programs reproduce their counts
//!   bit-for-bit from the same seed.

use nisq::prelude::*;
use nisq_ir::{Clbit, Qubit};
use nisq_sim::{BackendKind, EngineOptions, NoiseModel, TierCounts, TrialProgram};
use std::collections::HashMap;

fn machine() -> Machine {
    Machine::ibmq16_on_day(2019, 0)
}

/// Runs `program` and returns outcome counts plus tier occupancy.
fn run_counts(
    machine: &Machine,
    program: &TrialProgram,
    seed: u64,
    trials: u32,
    options: EngineOptions,
) -> (HashMap<Vec<bool>, u32>, TierCounts) {
    let mut config = SimulatorConfig::with_trials(trials, seed);
    config.noise = NoiseModel::ideal();
    config.engine = options;
    let sim = Simulator::new(machine, config);
    let (result, tiers) = sim.run_program_with_stats(program);
    (result.counts().clone().into_iter().collect(), tiers)
}

fn frequency_of(counts: &HashMap<Vec<bool>, u32>, key: &[bool], trials: u32) -> f64 {
    f64::from(counts.get(key).copied().unwrap_or(0)) / f64::from(trials)
}

fn total_variation(a: &HashMap<Vec<bool>, u32>, b: &HashMap<Vec<bool>, u32>, trials: u32) -> f64 {
    let mut keys: Vec<&Vec<bool>> = a.keys().chain(b.keys()).collect();
    keys.sort_unstable();
    keys.dedup();
    let n = f64::from(trials);
    0.5 * keys
        .iter()
        .map(|k| {
            let pa = f64::from(a.get(*k).copied().unwrap_or(0)) / n;
            let pb = f64::from(b.get(*k).copied().unwrap_or(0)) / n;
            (pa - pb).abs()
        })
        .sum::<f64>()
}

fn x_then_measure() -> Circuit {
    let mut c = Circuit::with_clbits(1, 1);
    c.x(Qubit(0));
    c.measure(Qubit(0), Clbit(0));
    c
}

#[test]
fn amplitude_damping_matches_analytic_decay() {
    // γ = 0.3 damping applied to the |1⟩ state prepared by an X gate:
    // P(measure 1) = 1 − γ = 0.7 exactly. At 32768 trials, 3σ of the
    // Bernoulli frequency is ≈ 0.008; 0.02 leaves >2× headroom.
    let m = machine();
    let trials = 32768u32;
    let sim = {
        let mut config = SimulatorConfig::with_trials(trials, 13);
        config.noise = NoiseModel::ideal();
        Simulator::new(&m, config)
    };
    // Measure-bound: the bare Kraus pair fires just before readout.
    let measure_spec = NoiseSpec::from_json(
        r#"{"name": "ad-measure", "bindings": [
            {"on": "measure", "rate": 0.3,
             "channel": {"kind": "amplitude-damping"}}]}"#,
    )
    .unwrap();
    // Gate-bound: the damping operators fuse with the X unitary (A_k = K_k·U).
    let gate_spec = NoiseSpec::from_json(
        r#"{"name": "ad-sq", "bindings": [
            {"on": "sq", "rate": 0.3,
             "channel": {"kind": "amplitude-damping"}}]}"#,
    )
    .unwrap();
    for spec in [&measure_spec, &gate_spec] {
        let program = sim.prepare_with_noise(&x_then_measure(), Some(spec));
        assert!(
            program.has_kraus(),
            "{}: damping is a Kraus site",
            spec.name()
        );
        assert_eq!(program.backend_kind(), BackendKind::Dense);
        let (counts, tiers) = run_counts(&m, &program, 13, trials, EngineOptions::default());
        assert_eq!(
            tiers.full_replay,
            u64::from(trials),
            "{}: Kraus programs replay every trial",
            spec.name()
        );
        let p1 = frequency_of(&counts, &[true], trials);
        assert!(
            (p1 - 0.7).abs() < 0.02,
            "{}: P(1) = {p1}, analytic 0.7",
            spec.name()
        );
    }
}

#[test]
fn pauli_weighted_channel_matches_analytic_flip_rate() {
    // The channel fires with p = 0.2 and picks X:Y:Z with weights 1:1:2.
    // From |1⟩ only X and Y flip the readout, so
    // P(measure 0) = 0.2 · (1+1)/4 = 0.1. Pure-Pauli spec on a Clifford
    // circuit: the tableau backend and tier-0 propagation must survive.
    let m = machine();
    let trials = 32768u32;
    let spec = NoiseSpec::from_json(
        r#"{"name": "pw-sq", "bindings": [
            {"on": "sq", "rate": 0.2,
             "channel": {"kind": "pauli-weighted", "wx": 1, "wy": 1, "wz": 2}}]}"#,
    )
    .unwrap();
    assert!(spec.is_pauli_only());
    let program =
        TrialProgram::lower_with_spec(&x_then_measure(), &m, &NoiseModel::ideal(), Some(&spec));
    assert!(!program.has_kraus());
    assert_eq!(program.backend_kind(), BackendKind::Tableau);
    let (counts, tiers) = run_counts(&m, &program, 29, trials, EngineOptions::default());
    assert!(tiers.pauli_prop > 0, "tier 0 must absorb the error trials");
    let p0 = frequency_of(&counts, &[false], trials);
    assert!((p0 - 0.1).abs() < 0.01, "P(0) = {p0}, analytic 0.1");
}

/// A small entangling Clifford circuit with a mid-circuit measurement.
fn clifford_workload() -> Circuit {
    let mut c = Circuit::new(3);
    c.h(Qubit(0));
    c.cnot(Qubit(0), Qubit(1));
    c.measure(Qubit(0), Clbit(0));
    c.cnot(Qubit(1), Qubit(2));
    c.measure(Qubit(1), Clbit(1));
    c.measure(Qubit(2), Clbit(2));
    c
}

#[test]
fn pauli_only_spec_keeps_the_tableau_backend_and_matches_dense_exact() {
    // Bit-flips on every single-qubit gate plus calibration-scaled
    // two-qubit depolarizing on every CNOT: all Pauli-diagonal, so the
    // default engine keeps the tableau fast path. Its outcome distribution
    // must match the dense-exact engine's within sampling TV (the same
    // cross-backend gate the built-in channels pass).
    let m = machine();
    let spec = NoiseSpec::from_json(
        r#"{"name": "pauli-mix", "bindings": [
            {"on": "sq", "rate": 0.02, "channel": {"kind": "bit-flip"}},
            {"on": "cnot", "rate": {"calibration": 2.0},
             "channel": {"kind": "depolarizing-2q"}}]}"#,
    )
    .unwrap();
    let program =
        TrialProgram::lower_with_spec(&clifford_workload(), &m, &NoiseModel::ideal(), Some(&spec));
    assert_eq!(program.backend_kind(), BackendKind::Tableau);
    let trials = 16384u32;
    let (fast, fast_tiers) = run_counts(&m, &program, 17, trials, EngineOptions::default());
    let (exact, exact_tiers) = run_counts(&m, &program, 17, trials, EngineOptions::exact());
    assert_eq!(fast_tiers.backend, BackendKind::Tableau);
    assert_eq!(exact_tiers.backend, BackendKind::Dense);
    assert!(fast_tiers.pauli_prop > 0, "spec channels must reach tier 0");
    let tv = total_variation(&fast, &exact, trials);
    assert!(
        tv < 0.05,
        "cross-backend TV {tv} exceeds the sampling bound"
    );
}

#[test]
fn non_pauli_spec_forces_dense_full_replay_and_is_deterministic() {
    // One amplitude-damping binding is enough to force the dense backend
    // on an otherwise Clifford executable; every trial is a full replay
    // (branch probabilities depend on live amplitudes) and the counts are
    // reproducible bit-for-bit from the seed.
    let m = machine();
    let spec = NoiseSpec::from_json(
        r#"{"name": "ad-all", "bindings": [
            {"on": "measure", "rate": 0.1,
             "channel": {"kind": "amplitude-damping"}}]}"#,
    )
    .unwrap();
    assert!(!spec.is_pauli_only());
    let program =
        TrialProgram::lower_with_spec(&clifford_workload(), &m, &NoiseModel::ideal(), Some(&spec));
    assert!(program.has_kraus());
    assert_eq!(program.backend_kind(), BackendKind::Dense);
    let trials = 4096u32;
    let (a, tiers) = run_counts(&m, &program, 31, trials, EngineOptions::default());
    assert_eq!(tiers.full_replay, u64::from(trials));
    assert_eq!(
        tiers.error_free + tiers.pauli_prop + tiers.checkpointed,
        0,
        "no fast tier may serve a Kraus program"
    );
    let (b, _) = run_counts(&m, &program, 31, trials, EngineOptions::default());
    assert_eq!(a, b, "same seed must reproduce Kraus counts bit-for-bit");
}
