//! Fault-injection suite for the serve daemon.
//!
//! Uses the `fault-injection` feature of `nisq-serve` to make the worker
//! panic or stall on demand, and drives the daemon through the failures
//! the isolation machinery exists for: malformed wire input, mid-request
//! panics, deadline blowouts, queue overload, and clients that vanish
//! mid-request. The invariant under every fault: the daemon stays live
//! and every surviving request gets a well-formed, correctly-coded
//! response.

use nisq::exp::json::{self, Value};
use nisq::prelude::*;
use nisq::serve::{
    Endpoint, FaultPlan, Server, ServerConfig, ServerHandle, Supervisor, SupervisorConfig,
    SupervisorHandle, ENV_DELAY_BEFORE_RUN_MS, ENV_WEDGE_AFTER_PINGS,
};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn start(config: ServerConfig) -> (ServerHandle, SocketAddr) {
    let server = Server::bind(&Endpoint::Tcp("127.0.0.1:0".to_string()), config).unwrap();
    let addr = server.local_addr().unwrap();
    (server.spawn(), addr)
}

struct Client {
    reader: BufReader<TcpStream>,
    stream: TcpStream,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .unwrap();
        Client {
            reader: BufReader::new(stream.try_clone().unwrap()),
            stream,
        }
    }

    fn send(&mut self, line: &str) {
        self.stream.write_all(line.as_bytes()).unwrap();
        self.stream.write_all(b"\n").unwrap();
        self.stream.flush().unwrap();
    }

    fn recv_line(&mut self) -> String {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).unwrap();
        assert!(n > 0, "server closed the connection unexpectedly");
        line.trim().to_string()
    }

    fn recv(&mut self) -> Value {
        json::parse(&self.recv_line()).unwrap()
    }

    fn roundtrip(&mut self, line: &str) -> Value {
        self.send(line);
        self.recv()
    }
}

fn field<'a>(doc: &'a Value, key: &str) -> &'a Value {
    doc.get(key).unwrap_or_else(|| panic!("missing {key:?}"))
}

fn status(doc: &Value) -> &str {
    field(doc, "status").as_str().unwrap()
}

fn code(doc: &Value) -> &str {
    field(doc, "code").as_str().unwrap()
}

fn embedded_report(line: &str) -> Report {
    let idx = line.find("\"report\": ").expect("response embeds a report");
    Report::from_json(&line[idx + "\"report\": ".len()..line.len() - 1]).unwrap()
}

const VALID_RUN: &str = r#"{"op": "run", "id": "ok", "plan": {"benchmarks": "bv4", "mappers": "qiskit", "trials": 32, "sim_seed": 5}}"#;

/// A run whose plan contains a custom circuit named `boom` — the panic
/// trigger wired into the fault plans below.
const PANIC_RUN: &str = r#"{"op": "run", "id": "boom", "plan": {"circuits": [{"name": "boom", "qasm": "qreg q[2]; cx q[0], q[1];"}], "mappers": "qiskit"}}"#;

#[test]
fn mid_request_panic_is_answered_and_the_daemon_lives_on() {
    let config = ServerConfig {
        fault_plan: Some(FaultPlan {
            panic_on_circuit: Some("boom".to_string()),
            ..FaultPlan::none()
        }),
        ..ServerConfig::default()
    };
    let (handle, addr) = start(config);
    let mut client = Client::connect(addr);

    // Three panicking requests in a row: each gets a structured error.
    for _ in 0..3 {
        let response = client.roundtrip(PANIC_RUN);
        assert_eq!(status(&response), "error");
        assert_eq!(code(&response), "panic");
        assert_eq!(field(&response, "id").as_str(), Some("boom"));
    }

    // The daemon still serves, and the post-panic result is canonically
    // identical to a fresh local session's — faults do not corrupt the
    // science.
    client.send(VALID_RUN);
    let line = client.recv_line();
    let doc = json::parse(&line).unwrap();
    assert_eq!(status(&doc), "ok");
    let plan = SweepPlan::new()
        .benchmark(Benchmark::Bv4)
        .config("qiskit", CompilerConfig::qiskit())
        .with_trials(32)
        .fixed_sim_seed(5);
    let direct = Session::new().run(&plan).unwrap().canonicalized();
    assert_eq!(embedded_report(&line).canonicalized(), direct);

    let stats = client.roundtrip(r#"{"op": "stats"}"#);
    let body = field(&stats, "stats");
    assert_eq!(field(body, "panics").as_u64(), Some(3));
    assert_eq!(field(body, "completed").as_u64(), Some(1));

    handle.shutdown();
    handle.join().unwrap();
}

#[test]
fn bounded_queue_rejects_excess_load_with_a_retry_hint() {
    let config = ServerConfig {
        queue_capacity: 1,
        fault_plan: Some(FaultPlan {
            delay_before_run_ms: Some(400),
            ..FaultPlan::none()
        }),
        ..ServerConfig::default()
    };
    let (handle, addr) = start(config);
    let mut client = Client::connect(addr);

    // First request is popped by the (stalled) worker, second fills the
    // queue; pump more until backpressure appears, then collect every
    // response and match by id: nothing is lost, nothing malformed.
    let ids = ["q0", "q1", "q2", "q3", "q4"];
    for id in ids {
        client.send(&VALID_RUN.replace("\"ok\"", &format!("{:?}", id)));
        // Space the sends out so admission order is deterministic.
        std::thread::sleep(Duration::from_millis(30));
    }
    let mut responses: HashMap<String, Value> = HashMap::new();
    for _ in ids {
        let doc = client.recv();
        let id = field(&doc, "id").as_str().unwrap().to_string();
        responses.insert(id, doc);
    }
    let rejected = ids
        .iter()
        .filter(|id| status(&responses[**id]) == "error")
        .count();
    assert!(rejected >= 1, "overload must surface as queue-full");
    for id in ids {
        let doc = &responses[id];
        match status(doc) {
            "ok" => {}
            "error" => {
                assert_eq!(code(doc), "queue-full");
                assert!(field(doc, "retry_after_ms").as_u64().unwrap() > 0);
            }
            other => panic!("unexpected status {other}"),
        }
    }

    handle.shutdown();
    handle.join().unwrap();
}

#[test]
fn deadlines_bound_request_wall_clock() {
    let config = ServerConfig {
        fault_plan: Some(FaultPlan {
            delay_before_run_ms: Some(300),
            ..FaultPlan::none()
        }),
        ..ServerConfig::default()
    };
    let (handle, addr) = start(config);
    let mut client = Client::connect(addr);

    // The injected stall eats the whole 100 ms budget before the first
    // cell can start: a clean timeout, elapsed time reported.
    let response = client
        .roundtrip(r#"{"op": "run", "id": "late", "timeout_ms": 100, "plan": {"benchmarks": "bv4", "mappers": "qiskit"}}"#);
    assert_eq!(status(&response), "error");
    assert_eq!(code(&response), "timeout");
    assert!(field(&response, "message").as_str().unwrap().contains("ms"));

    // A request after the timeout is unaffected.
    let ok = client.roundtrip(VALID_RUN);
    assert_eq!(status(&ok), "ok");

    handle.shutdown();
    handle.join().unwrap();
}

#[test]
fn expiring_mid_plan_returns_a_partial_report() {
    // No injected delay: the budget expires between cells. The first cell
    // always starts (the deadline is checked before each cell), later
    // days are cut off once 450 ms of stall + compile + simulate pass the
    // 500 ms budget.
    let config = ServerConfig {
        max_trials: 1 << 20,
        fault_plan: Some(FaultPlan {
            delay_before_run_ms: Some(450),
            ..FaultPlan::none()
        }),
        ..ServerConfig::default()
    };
    let (handle, addr) = start(config);
    let mut client = Client::connect(addr);

    client.send(
        r#"{"op": "run", "id": "cut", "timeout_ms": 500, "plan": {"benchmarks": "bv4", "mappers": "qiskit", "days": "0..6", "trials": 300000, "sim_seed": 1}}"#,
    );
    let line = client.recv_line();
    let doc = json::parse(&line).unwrap();
    assert_eq!(status(&doc), "partial");
    assert_eq!(code(&doc), "timeout");
    let done = field(&doc, "cells_done").as_u64().unwrap();
    let total = field(&doc, "cells_total").as_u64().unwrap();
    assert_eq!(total, 6);
    assert!(
        done >= 1 && done < total,
        "partial means a strict prefix, got {done}/{total}"
    );
    let report = embedded_report(&line);
    assert_eq!(report.cells.len() as u64, done);

    handle.shutdown();
    handle.join().unwrap();
}

#[test]
fn vanishing_clients_do_not_wedge_the_worker() {
    let config = ServerConfig {
        fault_plan: Some(FaultPlan {
            delay_before_run_ms: Some(200),
            ..FaultPlan::none()
        }),
        ..ServerConfig::default()
    };
    let (handle, addr) = start(config);

    // Submit work, then vanish before the response can be written.
    {
        let mut doomed = Client::connect(addr);
        doomed.send(VALID_RUN);
    }

    // The worker finishes the orphaned request and moves on; a live
    // client sees a healthy daemon.
    let mut client = Client::connect(addr);
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        let stats = client.roundtrip(r#"{"op": "stats"}"#);
        let done = field(field(&stats, "stats"), "completed").as_u64().unwrap();
        if done >= 1 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "orphaned request never completed"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    assert_eq!(status(&client.roundtrip(VALID_RUN)), "ok");

    handle.shutdown();
    handle.join().unwrap();
}

#[test]
fn graceful_shutdown_drains_inflight_work_and_refuses_new_work() {
    let config = ServerConfig {
        fault_plan: Some(FaultPlan {
            delay_before_run_ms: Some(300),
            ..FaultPlan::none()
        }),
        ..ServerConfig::default()
    };
    let (handle, addr) = start(config);
    let mut worker_client = Client::connect(addr);
    worker_client.send(VALID_RUN);
    // Let the request get admitted before pulling the plug.
    std::thread::sleep(Duration::from_millis(100));

    handle.shutdown();

    // The in-flight request still completes and its response arrives.
    let finished = worker_client.recv();
    assert_eq!(status(&finished), "ok");

    handle.join().unwrap();
}

#[test]
fn flooding_client_cannot_starve_a_quiet_one() {
    let config = ServerConfig {
        queue_capacity: 8,
        fault_plan: Some(FaultPlan {
            delay_before_run_ms: Some(400),
            ..FaultPlan::none()
        }),
        ..ServerConfig::default()
    };
    let (handle, addr) = start(config);

    // Connection 0 floods four requests before connection 1 says a word.
    let mut flooder = Client::connect(addr);
    for i in 0..4 {
        flooder.send(&VALID_RUN.replace("\"ok\"", &format!("\"flood-{i}\"")));
    }
    // Let the flood be admitted (and its first request claimed by the
    // stalled worker) before the quiet client appears.
    std::thread::sleep(Duration::from_millis(150));
    let mut quiet = Client::connect(addr);
    quiet.send(&VALID_RUN.replace("\"ok\"", "\"quiet\""));

    let response = quiet.recv();
    assert_eq!(status(&response), "ok");
    assert_eq!(field(&response, "id").as_str(), Some("quiet"));
    // Round-robin proof: the quiet answer lands while the flood is still
    // queued behind it — under FIFO the whole flood would drain first.
    let stats = quiet.roundtrip(r#"{"op": "stats"}"#);
    let body = field(&stats, "stats");
    let depths = field(body, "queue_depths");
    assert!(
        depths.get("0").and_then(Value::as_u64).unwrap_or(0) >= 1,
        "flooder lane should still hold work when the quiet client is answered: {stats:?}"
    );

    // Nothing is lost: the flood still gets every response.
    for _ in 0..4 {
        assert_eq!(status(&flooder.recv()), "ok");
    }
    handle.shutdown();
    handle.join().unwrap();
}

#[test]
fn lane_capacity_bounds_the_flooder_with_jittered_backoff_not_the_neighbors() {
    let config = ServerConfig {
        queue_capacity: 1,
        fault_plan: Some(FaultPlan {
            delay_before_run_ms: Some(400),
            ..FaultPlan::none()
        }),
        ..ServerConfig::default()
    };
    let (handle, addr) = start(config);
    let mut flooder = Client::connect(addr);

    // flood-0 is claimed by the (stalled) worker, flood-1 fills the lane,
    // flood-2 bounces off the per-lane bound.
    flooder.send(&VALID_RUN.replace("\"ok\"", "\"flood-0\""));
    std::thread::sleep(Duration::from_millis(100));
    flooder.send(&VALID_RUN.replace("\"ok\"", "\"flood-1\""));
    std::thread::sleep(Duration::from_millis(50));
    flooder.send(&VALID_RUN.replace("\"ok\"", "\"flood-2\""));
    let rejection = flooder.recv();
    assert_eq!(status(&rejection), "error");
    assert_eq!(code(&rejection), "queue-full");
    // retry_after_ms = 100 + 150 * queue_len + fnv64(id) % 100: the
    // deterministic per-id jitter de-synchronizes retrying herds.
    let retry = field(&rejection, "retry_after_ms").as_u64().unwrap();
    let jitter = nisq::exp::fnv64(b"flood-2") % 100;
    assert!(retry >= 100 + 150 + jitter, "retry hint too small: {retry}");
    assert_eq!((retry - 100 - jitter) % 150, 0, "jitter missing: {retry}");

    // The full lane is the flooder's problem alone: a fresh client's
    // request is admitted immediately.
    let mut quiet = Client::connect(addr);
    assert_eq!(status(&quiet.roundtrip(VALID_RUN)), "ok");
    for _ in 0..2 {
        assert_eq!(status(&flooder.recv()), "ok");
    }
    handle.shutdown();
    handle.join().unwrap();
}

#[test]
fn journaled_requests_resume_across_a_daemon_restart() {
    let dir = std::env::temp_dir().join("nisq-serve-journal-test");
    let _ = std::fs::remove_dir_all(&dir);
    let config = || ServerConfig {
        journal_dir: Some(dir.clone()),
        ..ServerConfig::default()
    };
    let run = r#"{"op": "run", "id": "j1", "resume_key": "exp-42", "plan": {"benchmarks": "bv4,hs2", "mappers": "qiskit", "trials": 32, "sim_seed": 5, "journal": true}}"#;

    let (handle, addr) = start(config());
    let mut client = Client::connect(addr);
    client.send(run);
    let first_line = client.recv_line();
    let first = json::parse(&first_line).unwrap();
    assert_eq!(status(&first), "ok");
    let first_report = embedded_report(&first_line);
    assert_eq!(first_report.resumed_cells, 0);
    // The journal landed where resume_key says it should.
    let journal = nisq::serve::journal_path(&dir, "exp-42");
    assert!(journal.is_file(), "{journal:?} missing");
    handle.shutdown();
    handle.join().unwrap();

    // "Crash" and restart: a new daemon over the same journal directory
    // serves the re-sent request from the finished prefix, bit-identically.
    let (handle, addr) = start(config());
    let mut client = Client::connect(addr);
    client.send(run);
    let second_line = client.recv_line();
    let second = json::parse(&second_line).unwrap();
    assert_eq!(status(&second), "ok");
    let second_report = embedded_report(&second_line);
    assert_eq!(second_report.resumed_cells, 2);
    assert_eq!(second_report.cache.journal_hits, 2);
    assert_eq!(
        second_report.to_json_line_canonical(),
        first_report.to_json_line_canonical()
    );

    // An unusable journal is a typed request error, not a daemon fault.
    std::fs::write(nisq::serve::journal_path(&dir, "bad"), b"not a journal\n").unwrap();
    let corrupt = client.roundtrip(
        r#"{"op": "run", "id": "j2", "resume_key": "bad", "plan": {"benchmarks": "bv4", "mappers": "qiskit", "journal": true}}"#,
    );
    assert_eq!(status(&corrupt), "error");
    assert_eq!(code(&corrupt), "journal-corrupt");

    // Journaling without a resume_key is refused up front.
    let keyless = client.roundtrip(
        r#"{"op": "run", "id": "j3", "plan": {"benchmarks": "bv4", "mappers": "qiskit", "journal": true}}"#,
    );
    assert_eq!(status(&keyless), "error");
    assert_eq!(code(&keyless), "invalid-plan");

    let stats = client.roundtrip(r#"{"op": "stats"}"#);
    let journal_stats = field(field(&stats, "stats"), "journal");
    assert_eq!(field(journal_stats, "runs").as_u64(), Some(1));
    assert_eq!(field(journal_stats, "corrupt").as_u64(), Some(1));
    handle.shutdown();
    handle.join().unwrap();
}

#[test]
fn journaled_requests_need_a_journal_dir() {
    let (handle, addr) = start(ServerConfig::default());
    let mut client = Client::connect(addr);
    let response = client.roundtrip(
        r#"{"op": "run", "id": "nodir", "resume_key": "k", "plan": {"benchmarks": "bv4", "mappers": "qiskit", "journal": true}}"#,
    );
    assert_eq!(status(&response), "error");
    assert_eq!(code(&response), "invalid-plan");
    assert!(field(&response, "message")
        .as_str()
        .unwrap()
        .contains("--journal-dir"));
    handle.shutdown();
    handle.join().unwrap();
}

// ---------------------------------------------------------------------
// Supervised multi-worker fleet: worker-kill battery.
//
// These tests boot the real `nisqc` binary as worker processes (the
// test build carries the fault-injection hooks via feature unification)
// and drive the supervisor through the deaths it exists for: SIGKILL
// mid-request, a wedged worker that stops answering heartbeats, and the
// total loss of every candidate shard.
// ---------------------------------------------------------------------

/// A supervisor over `workers` copies of the `nisqc` test binary, with a
/// shared journal directory and the given extra worker environment.
fn fleet_config(workers: usize, name: &str, env: &[(&str, &str)]) -> SupervisorConfig {
    let dir = std::env::temp_dir().join(format!("nisq-supervisor-{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    let journal_dir = dir.join("journals");
    std::fs::create_dir_all(&journal_dir).unwrap();
    let server = ServerConfig {
        journal_dir: Some(journal_dir.clone()),
        ..ServerConfig::default()
    };
    let mut config = SupervisorConfig::new(
        workers,
        server,
        dir.join("run"),
        PathBuf::from(env!("CARGO_BIN_EXE_nisqc")),
    );
    config.spec.args.extend([
        "--journal-dir".to_string(),
        journal_dir.display().to_string(),
    ]);
    config.spec.env = env
        .iter()
        .map(|(k, v)| ((*k).to_string(), (*v).to_string()))
        .collect();
    config
}

fn start_fleet(config: SupervisorConfig) -> (SupervisorHandle, SocketAddr) {
    let supervisor = Supervisor::bind(&Endpoint::Tcp("127.0.0.1:0".to_string()), config).unwrap();
    let addr = supervisor.local_addr().unwrap();
    (supervisor.spawn(), addr)
}

fn sigkill(pid: u64) {
    let status = std::process::Command::new("sh")
        .arg("-c")
        .arg(format!("kill -9 {pid}"))
        .status()
        .unwrap();
    assert!(status.success(), "kill -9 {pid} failed");
}

fn workers_field(stats: &Value) -> &[Value] {
    field(field(stats, "stats"), "workers").as_array().unwrap()
}

fn supervisor_counter(stats: &Value, key: &str) -> u64 {
    field(field(field(stats, "stats"), "supervisor"), key)
        .as_u64()
        .unwrap()
}

fn poll_until<T>(mut probe: impl FnMut() -> Option<T>, what: &str) -> T {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if let Some(value) = probe() {
            return value;
        }
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(15));
    }
}

/// The pid of the one shard currently holding a forwarded request.
fn routed_shard_pid(observer: &mut Client) -> u64 {
    poll_until(
        || {
            let stats = observer.roundtrip(r#"{"op": "stats"}"#);
            workers_field(&stats).iter().find_map(|w| {
                (field(w, "pending").as_u64() == Some(1)).then(|| field(w, "pid").as_u64().unwrap())
            })
        },
        "the run to be routed to a shard",
    )
}

const FAILOVER_RUN: &str = r#"{"op": "run", "id": "fo", "resume_key": "fo-1", "plan": {"benchmarks": "bv4,hs2", "mappers": "qiskit", "trials": 32, "sim_seed": 5, "journal": true}}"#;

fn failover_reference() -> Report {
    let plan = SweepPlan::new()
        .benchmark(Benchmark::Bv4)
        .benchmark(Benchmark::Hs2)
        .config("qiskit", CompilerConfig::qiskit())
        .with_trials(32)
        .fixed_sim_seed(5);
    Session::new().run(&plan).unwrap().canonicalized()
}

#[test]
fn sigkilled_worker_fails_over_transparently_and_bit_identically() {
    let mut config = fleet_config(2, "failover", &[(ENV_DELAY_BEFORE_RUN_MS, "600")]);
    config.restart_backoff_base = Duration::from_millis(100);
    let (handle, addr) = start_fleet(config);

    let mut runner = Client::connect(addr);
    runner.send(FAILOVER_RUN);

    // SIGKILL the routed shard inside its injected pre-run stall.
    let mut observer = Client::connect(addr);
    sigkill(routed_shard_pid(&mut observer));

    // The client sees one ordinary success: the supervisor reaped the
    // dead shard and re-dispatched to the survivor, whose report is
    // canonically identical to a fresh single-process run.
    let line = runner.recv_line();
    let doc = json::parse(&line).unwrap();
    assert_eq!(status(&doc), "ok", "{line}");
    let direct = failover_reference();
    assert_eq!(embedded_report(&line).canonicalized(), direct);

    let stats = observer.roundtrip(r#"{"op": "stats"}"#);
    assert_eq!(supervisor_counter(&stats, "redispatches"), 1);
    assert_eq!(supervisor_counter(&stats, "worker_lost"), 0);

    // The killed shard is respawned within the (capped) backoff.
    poll_until(
        || {
            let stats = observer.roundtrip(r#"{"op": "stats"}"#);
            (supervisor_counter(&stats, "restarts") == 1
                && workers_field(&stats)
                    .iter()
                    .all(|w| field(w, "alive").as_bool() == Some(true)))
            .then_some(())
        },
        "the killed shard to be restarted",
    );

    // Re-sending the identical request replays the survivor's journal —
    // wherever the hash now routes it — without recomputing a cell.
    runner.send(FAILOVER_RUN);
    let line = runner.recv_line();
    assert_eq!(status(&json::parse(&line).unwrap()), "ok", "{line}");
    let report = embedded_report(&line);
    assert_eq!(report.resumed_cells, 2);
    assert_eq!(report.cache.journal_hits, 2);
    assert_eq!(report.canonicalized(), direct);

    handle.shutdown();
    handle.join().unwrap();
}

#[test]
fn killing_the_only_worker_is_a_coded_retryable_loss_then_recovery() {
    let config = fleet_config(1, "worker-lost", &[(ENV_DELAY_BEFORE_RUN_MS, "600")]);
    let (handle, addr) = start_fleet(config);
    let run = r#"{"op": "run", "id": "lost-1", "resume_key": "lost", "plan": {"benchmarks": "bv4", "mappers": "qiskit", "trials": 32, "sim_seed": 5, "journal": true}}"#;

    let mut runner = Client::connect(addr);
    runner.send(run);
    let mut observer = Client::connect(addr);
    sigkill(routed_shard_pid(&mut observer));

    // No surviving candidate: the client gets the coded, retryable
    // loss with the same deterministic per-id jitter as queue-full.
    let doc = runner.recv();
    assert_eq!(status(&doc), "error");
    assert_eq!(code(&doc), "worker-lost");
    let retry = field(&doc, "retry_after_ms").as_u64().unwrap();
    assert_eq!(retry, 500 + nisq::exp::fnv64(b"lost-1") % 100);

    // The monitor respawns the shard; the retried request succeeds and
    // matches a fresh single-process run bit-for-bit.
    poll_until(
        || {
            let stats = observer.roundtrip(r#"{"op": "stats"}"#);
            let worker = &workers_field(&stats)[0];
            (field(worker, "alive").as_bool() == Some(true)
                && field(worker, "restarts").as_u64() == Some(1))
            .then_some(())
        },
        "the lone shard to be restarted",
    );
    runner.send(run);
    let line = runner.recv_line();
    assert_eq!(status(&json::parse(&line).unwrap()), "ok", "{line}");
    let plan = SweepPlan::new()
        .benchmark(Benchmark::Bv4)
        .config("qiskit", CompilerConfig::qiskit())
        .with_trials(32)
        .fixed_sim_seed(5);
    let direct = Session::new().run(&plan).unwrap().canonicalized();
    assert_eq!(embedded_report(&line).canonicalized(), direct);

    let stats = observer.roundtrip(r#"{"op": "stats"}"#);
    assert_eq!(supervisor_counter(&stats, "worker_lost"), 1);
    handle.shutdown();
    handle.join().unwrap();
}

#[test]
fn wedged_worker_misses_heartbeats_and_is_restarted() {
    // The worker answers two heartbeats, then goes silent while its
    // process lives on — the liveness deadline, not process exit, must
    // catch it.
    let mut config = fleet_config(1, "wedge", &[(ENV_WEDGE_AFTER_PINGS, "2")]);
    config.heartbeat_interval = Duration::from_millis(100);
    config.liveness_deadline = Duration::from_millis(400);
    config.restart_backoff_base = Duration::from_millis(50);
    let (handle, addr) = start_fleet(config);

    let mut observer = Client::connect(addr);
    poll_until(
        || {
            let stats = observer.roundtrip(r#"{"op": "stats"}"#);
            let worker = &workers_field(&stats)[0];
            (field(worker, "restarts").as_u64().unwrap() >= 1
                && field(worker, "alive").as_bool() == Some(true))
            .then_some(())
        },
        "the wedged worker to be reaped and respawned",
    );
    handle.shutdown();
    handle.join().unwrap();
}

#[test]
fn routing_is_sticky_for_one_plan_across_reconnects() {
    let config = fleet_config(3, "sticky", &[]);
    let (handle, addr) = start_fleet(config);

    // The same plan from four fresh connections: rendezvous hashing must
    // land every one on the same shard, keeping its caches warm.
    for i in 0..4 {
        let mut client = Client::connect(addr);
        let doc = client.roundtrip(&VALID_RUN.replace("\"ok\"", &format!("\"sticky-{i}\"")));
        assert_eq!(status(&doc), "ok");
    }
    let mut observer = Client::connect(addr);
    let stats = observer.roundtrip(r#"{"op": "stats"}"#);
    let routed: Vec<u64> = workers_field(&stats)
        .iter()
        .map(|w| field(w, "routed").as_u64().unwrap())
        .collect();
    assert_eq!(routed.iter().sum::<u64>(), 4);
    assert!(
        routed.contains(&4),
        "one plan should always land on one shard: {routed:?}"
    );
    handle.shutdown();
    handle.join().unwrap();
}

#[test]
fn mixed_hostile_load_yields_one_well_formed_response_per_request() {
    let config = ServerConfig {
        fault_plan: Some(FaultPlan {
            panic_on_circuit: Some("boom".to_string()),
            ..FaultPlan::none()
        }),
        ..ServerConfig::default()
    };
    let (handle, addr) = start(config);
    let mut client = Client::connect(addr);

    let battery: &[(&str, &str, &str)] = &[
        ("{malformed", "error", "protocol"),
        (r#"{"op": "dance"}"#, "error", "protocol"),
        (
            r#"{"op": "run", "id": "bad-plan", "plan": {"benchmarks": "nope"}}"#,
            "error",
            "invalid-plan",
        ),
        (
            r#"{"op": "run", "id": "deg", "plan": {"benchmarks": "bv4", "topologies": "ring-1"}}"#,
            "error",
            "invalid-plan",
        ),
        (
            r#"{"op": "run", "id": "big", "plan": {"benchmarks": "bv4", "topologies": "grid-1000x1000"}}"#,
            "error",
            "budget",
        ),
        (PANIC_RUN, "error", "panic"),
        (VALID_RUN, "ok", ""),
    ];
    for (line, want_status, want_code) in battery {
        let response = client.roundtrip(line);
        assert_eq!(status(&response), *want_status, "{line}");
        if !want_code.is_empty() {
            assert_eq!(code(&response), *want_code, "{line}");
        }
    }

    handle.shutdown();
    handle.join().unwrap();
}
