//! Acceptance properties of the three-tier trial engine:
//!
//! * **exactness** — the tiered engine (error-pattern pre-sampling, tier-1
//!   multinomial shortcut, ideal-prefix / dominant-path checkpoints) is
//!   bit-identical to the single-trial reference path
//!   ([`TrialProgram::run_trial`]) on every workload shape, including
//!   mid-circuit measurements and divergence fallbacks;
//! * **statistical equivalence** — success rates agree (within sampling
//!   tolerance) with a fully independent interleaved-draw replayer built
//!   on the public state-vector API, i.e. the draw-order restructuring did
//!   not change the simulated distribution;
//! * **determinism** — a seed reproduces a report bit-for-bit, at the
//!   simulator and at the `Session` level;
//! * **thread invariance** — the multinomial aggregation of tier-1 trials
//!   (and everything else) is independent of the worker-thread count;
//! * **occupancy accounting** — tier counts partition the trial budget and
//!   aggregate correctly into `Report` totals.

use nisq::prelude::*;
use nisq_exp::{SweepPlan, TierStats};
use nisq_ir::{GateKind, Qubit};
use nisq_sim::{noise, NoiseModel, StateVector, TierCounts, TrialOp, TrialProgram};
use rand::Rng;
use std::collections::HashMap;

fn machine() -> Machine {
    Machine::ibmq16_on_day(2019, 0)
}

/// A physical circuit whose mid-circuit measurement has a genuinely random
/// outcome (p1 = 0.5) and is *not* sinkable — later gates reference the
/// measured qubit — so the engine's dominant-path walker diverges on about
/// half the trials and must fall back to its pre-measure checkpoint.
fn coin_flip_circuit() -> Circuit {
    let mut c = Circuit::new(3);
    c.h(Qubit(0));
    c.measure(Qubit(0), nisq_ir::Clbit(0));
    c.cnot(Qubit(0), Qubit(1));
    c.h(Qubit(2));
    c.cnot(Qubit(2), Qubit(1));
    c.measure(Qubit(1), nisq_ir::Clbit(1));
    c.measure(Qubit(2), nisq_ir::Clbit(2));
    c
}

/// Reference aggregation: run every trial through the single-trial path.
fn reference_counts(program: &TrialProgram, seed: u64, trials: u32) -> HashMap<u64, u32> {
    let mut scratch = program.make_scratch();
    let mut counts = HashMap::new();
    for trial in 0..trials {
        let mut rng = TrialProgram::trial_rng(seed, trial);
        let key = program.run_trial(&mut scratch, &mut rng);
        *counts.entry(key).or_insert(0) += 1;
    }
    counts
}

fn engine_counts(
    machine: &Machine,
    program: &TrialProgram,
    seed: u64,
    trials: u32,
    threads: usize,
) -> (HashMap<u64, u32>, TierCounts) {
    let mut config = SimulatorConfig::with_trials(trials, seed);
    config.threads = threads;
    let sim = Simulator::new(machine, config);
    let (result, tiers) = sim.run_program_with_stats(program);
    let mut counts = HashMap::new();
    for (bits, n) in result.counts() {
        let mut key = 0u64;
        for (i, &b) in bits.iter().enumerate() {
            if b {
                key |= 1u64 << i;
            }
        }
        *counts.entry(key).or_insert(0) += n;
    }
    (counts, tiers)
}

#[test]
fn engine_is_bit_identical_to_reference_replay() {
    let m = machine();
    let mut programs: Vec<(String, TrialProgram)> = Vec::new();
    // Compiled paper benchmarks: swap-back executables with mid-circuit
    // measurements (BV8/qiskit) and terminal-sample-only programs.
    for (benchmark, config) in [
        (Benchmark::Bv8, CompilerConfig::qiskit()),
        (Benchmark::Toffoli, CompilerConfig::qiskit()),
        (Benchmark::Adder, CompilerConfig::r_smt_star(0.5)),
    ] {
        let compiled = Compiler::new(&m, config)
            .compile(&benchmark.circuit())
            .unwrap();
        programs.push((
            format!("{benchmark}"),
            TrialProgram::lower(compiled.physical_circuit(), &m, &NoiseModel::full()),
        ));
    }
    // A coin-flip mid-measure: exercises the divergence fallback on ~half
    // of all trials, under full noise and in the noiseless limit.
    for noise_model in [NoiseModel::full(), NoiseModel::ideal()] {
        programs.push((
            "coin-flip".into(),
            TrialProgram::lower(&coin_flip_circuit(), &m, &noise_model),
        ));
    }

    for (name, program) in &programs {
        for seed in [1u64, 42] {
            let reference = reference_counts(program, seed, 1536);
            let (engine, tiers) = engine_counts(&m, program, seed, 1536, 4);
            assert_eq!(&engine, &reference, "{name} seed {seed} diverged");
            assert_eq!(tiers.total(), 1536, "{name}: tiers must partition trials");
        }
    }
}

/// An interleaved-draw replayer with no fusion, no relabeling, no
/// pre-sampling and no measurement sinking: every gate and error is applied
/// directly through the public [`StateVector`] API, drawing stochastic
/// outcomes at the point they occur (the pre-rework trial semantics).
/// Different RNG stream layout than the engine, so only distributions can
/// be compared.
fn interleaved_success_rate(
    program: &TrialProgram,
    expected_key: u64,
    seed: u64,
    trials: u32,
) -> f64 {
    let n = program.num_qubits();
    let mut hits = 0u32;
    for trial in 0..trials {
        let mut rng = TrialProgram::trial_rng(seed ^ 0x5eed, trial);
        let mut state = StateVector::new(n);
        let mut clbits = 0u64;
        let apply_pauli = |state: &mut StateVector, q: u8, p: noise::Pauli| {
            if let Some(kind) = p.gate_kind() {
                state.apply_single(usize::from(q), kind);
            }
        };
        for op in program.ops() {
            match *op {
                TrialOp::Unitary { qubit, ref matrix } => {
                    state.apply_matrix(usize::from(qubit), matrix);
                }
                TrialOp::Cnot { control, target } => {
                    state.apply_cnot(usize::from(control), usize::from(target));
                }
                TrialOp::Swap {
                    a,
                    b,
                    noise: ref swap_noise,
                } => match swap_noise {
                    None => state.apply_swap(usize::from(a), usize::from(b)),
                    Some(sn) => {
                        for k in 0..3 {
                            let (c, t) = if k == 1 { (b, a) } else { (a, b) };
                            state.apply_cnot(usize::from(c), usize::from(t));
                            let (pc, pt) = noise::depolarizing_2q(sn.p_depol, &mut rng);
                            let (p_dc, p_dt) = if k == 1 {
                                (sn.p_dephase_b, sn.p_dephase_a)
                            } else {
                                (sn.p_dephase_a, sn.p_dephase_b)
                            };
                            apply_pauli(&mut state, c, pc);
                            apply_pauli(&mut state, t, pt);
                            if p_dc > 0.0 && rng.gen_bool(p_dc) {
                                state.apply_single(usize::from(c), GateKind::Z);
                            }
                            if p_dt > 0.0 && rng.gen_bool(p_dt) {
                                state.apply_single(usize::from(t), GateKind::Z);
                            }
                        }
                    }
                },
                TrialOp::GateNoise {
                    qubit,
                    p_depol,
                    p_dephase,
                } => {
                    let p = noise::depolarizing_1q(p_depol, &mut rng);
                    apply_pauli(&mut state, qubit, p);
                    if p_dephase > 0.0 && rng.gen_bool(p_dephase) {
                        state.apply_single(usize::from(qubit), GateKind::Z);
                    }
                }
                TrialOp::CnotNoise {
                    control,
                    target,
                    p_depol,
                    p_dephase_control,
                    p_dephase_target,
                } => {
                    let (pc, pt) = noise::depolarizing_2q(p_depol, &mut rng);
                    apply_pauli(&mut state, control, pc);
                    apply_pauli(&mut state, target, pt);
                    if p_dephase_control > 0.0 && rng.gen_bool(p_dephase_control) {
                        state.apply_single(usize::from(control), GateKind::Z);
                    }
                    if p_dephase_target > 0.0 && rng.gen_bool(p_dephase_target) {
                        state.apply_single(usize::from(target), GateKind::Z);
                    }
                }
                TrialOp::Measure {
                    qubit,
                    clbit,
                    p_flip,
                } => {
                    let mut outcome = state.measure(usize::from(qubit), &mut rng);
                    if p_flip > 0.0 && rng.gen_bool(p_flip) {
                        outcome = !outcome;
                    }
                    if outcome {
                        clbits |= 1u64 << clbit;
                    }
                }
                TrialOp::TerminalSample { ref measures } => {
                    let basis = state.sample_basis(&mut rng);
                    for &(qubit, clbit, p_flip) in measures {
                        let mut outcome = basis >> qubit & 1 == 1;
                        if p_flip > 0.0 && rng.gen_bool(p_flip) {
                            outcome = !outcome;
                        }
                        if outcome {
                            clbits |= 1u64 << clbit;
                        }
                    }
                }
            }
        }
        if clbits == expected_key {
            hits += 1;
        }
    }
    f64::from(hits) / f64::from(trials)
}

#[test]
fn engine_statistically_matches_interleaved_reference() {
    // The engine restructures every trial's draw order (error pattern
    // first, measurements after). The simulated distribution must not
    // move: success rates of the engine and of a naive interleaved-draw
    // replayer agree within sampling noise at 8192 trials (~3 sigma of a
    // Bernoulli at p ~ 0.5 is about 0.017; 0.03 leaves headroom).
    let m = machine();
    for (benchmark, config) in [
        (Benchmark::Bv8, CompilerConfig::qiskit()),
        (Benchmark::Toffoli, CompilerConfig::qiskit()),
    ] {
        let compiled = Compiler::new(&m, config)
            .compile(&benchmark.circuit())
            .unwrap();
        let program = TrialProgram::lower(compiled.physical_circuit(), &m, &NoiseModel::full());
        let expected = benchmark.expected_output();
        let mut expected_key = 0u64;
        for (i, &b) in expected.iter().enumerate() {
            if b {
                expected_key |= 1u64 << i;
            }
        }

        let trials = 8192u32;
        let sim = Simulator::new(&m, SimulatorConfig::with_trials(trials, 11));
        let engine_rate = sim.run_program(&program).probability_of(&expected);
        let interleaved_rate = interleaved_success_rate(&program, expected_key, 11, trials);
        assert!(
            (engine_rate - interleaved_rate).abs() < 0.03,
            "{benchmark}: engine {engine_rate} vs interleaved {interleaved_rate}"
        );
    }
}

#[test]
fn same_seed_reproduces_the_report_bit_for_bit() {
    let plan = SweepPlan::new()
        .benchmarks([Benchmark::Bv8, Benchmark::Toffoli])
        .config("Qiskit", CompilerConfig::qiskit())
        .config("R-SMT*", CompilerConfig::r_smt_star(0.5))
        .days([0, 1])
        .with_trials(512)
        .per_cell_sim_seed(99);
    let a = Session::new().run(&plan).unwrap();
    let b = Session::new().run(&plan).unwrap();
    for (ca, cb) in a.cells.iter().zip(b.cells.iter()) {
        assert_eq!(
            ca.success_rate, cb.success_rate,
            "{}/{}",
            ca.circuit, ca.day
        );
        assert_eq!(ca.tiers, cb.tiers, "{}/{}", ca.circuit, ca.day);
    }
    assert_eq!(a.tiers, b.tiers);
}

#[test]
fn multinomial_aggregation_is_thread_count_invariant() {
    let m = machine();
    // R-SMT* BV8 is tier-1 dominated (few physical gates, low error mass):
    // most trials take the multinomial shortcut, so this pins the tier-1
    // aggregation itself, not just the replay path.
    let compiled = Compiler::new(&m, CompilerConfig::r_smt_star(0.5))
        .compile(&Benchmark::Bv8.circuit())
        .unwrap();
    let program = TrialProgram::lower(compiled.physical_circuit(), &m, &NoiseModel::full());
    let (serial, serial_tiers) = engine_counts(&m, &program, 5, 3073, 1);
    assert!(
        serial_tiers.error_free > serial_tiers.checkpointed + serial_tiers.full_replay,
        "expected a tier-1-dominated workload, got {serial_tiers:?}"
    );
    for threads in [2, 3, 8] {
        let (parallel, tiers) = engine_counts(&m, &program, 5, 3073, threads);
        assert_eq!(serial, parallel, "counts diverged at {threads} threads");
        assert_eq!(serial_tiers, tiers, "tiers diverged at {threads} threads");
    }
}

#[test]
fn tier_occupancy_partitions_trials_and_aggregates_into_reports() {
    let m = machine();

    // Ideal noise: every trial is error-free by construction.
    let compiled = Compiler::new(&m, CompilerConfig::qiskit())
        .compile(&Benchmark::Toffoli.circuit())
        .unwrap();
    let ideal = TrialProgram::lower(compiled.physical_circuit(), &m, &NoiseModel::ideal());
    let (_, tiers) = engine_counts(&m, &ideal, 3, 777, 4);
    assert_eq!(
        tiers,
        TierCounts {
            error_free: 777,
            checkpointed: 0,
            full_replay: 0
        }
    );

    // Full noise on a swap-heavy executable: every tier fires, and the
    // counts partition the trial budget.
    let noisy = TrialProgram::lower(compiled.physical_circuit(), &m, &NoiseModel::full());
    let (_, tiers) = engine_counts(&m, &noisy, 3, 4096, 4);
    assert_eq!(tiers.total(), 4096);
    assert!(tiers.error_free > 0, "{tiers:?}");
    assert!(tiers.checkpointed > 0, "{tiers:?}");

    // Report plumbing: per-cell occupancy sums to the report totals, cells
    // without simulation report zeros, and the JSON round-trips.
    let plan = SweepPlan::new()
        .benchmarks([Benchmark::Bv4, Benchmark::Toffoli])
        .config("Qiskit", CompilerConfig::qiskit())
        .with_trials(256)
        .fixed_sim_seed(4);
    let report = Session::new().run(&plan).unwrap();
    let mut summed = TierStats::default();
    for cell in &report.cells {
        assert_eq!(cell.tiers.total(), 256, "{}", cell.circuit);
        summed.merge(&cell.tiers);
    }
    assert_eq!(summed, report.tiers);
    let parsed = nisq_exp::Report::from_json(&report.to_json()).unwrap();
    assert_eq!(parsed, report);

    let compile_only = Session::new()
        .run(
            &SweepPlan::new()
                .benchmark(Benchmark::Bv4)
                .config("Qiskit", CompilerConfig::qiskit()),
        )
        .unwrap();
    assert_eq!(compile_only.cells[0].tiers, TierStats::default());
    assert_eq!(compile_only.tiers, TierStats::default());
}
