//! Acceptance properties of the four-tier trial engine:
//!
//! * **exactness** — with tier-0 Pauli propagation disabled
//!   ([`EngineOptions::exact`]), the engine (error-pattern pre-sampling,
//!   tier-1 multinomial shortcut, ideal-prefix / dominant-path checkpoints,
//!   single-error suffix memoization) is bit-identical to the single-trial
//!   reference path ([`TrialProgram::run_trial`]) on every workload shape,
//!   including mid-circuit measurements and divergence fallbacks;
//! * **memo exactness** — memoized single-error trials are bit-identical
//!   to cold ones (memo on vs. off changes nothing but the hit counters);
//! * **tier-0 statistical equivalence** — Pauli-propagated trials sample
//!   the same outcome distribution as the numeric reference: total
//!   variation between the two engines' empirical distributions stays
//!   within the documented sampling bound at fixed seeds;
//! * **statistical equivalence of the engine as a whole** — success rates
//!   agree (within sampling tolerance) with a fully independent
//!   interleaved-draw replayer built on the public state-vector API;
//! * **determinism** — a seed reproduces a report bit-for-bit, at the
//!   simulator and at the `Session` level, on all four tiers;
//! * **thread invariance** — outcome counts *and* tier/memo occupancy are
//!   independent of the worker-thread count, with tier 0 and the memo
//!   enabled;
//! * **occupancy accounting** — the four tier counts partition the trial
//!   budget and aggregate correctly into `Report` totals (schema v3).

use nisq::prelude::*;
use nisq_exp::{SweepPlan, TierStats};
use nisq_ir::{GateKind, Qubit};
use nisq_sim::{noise, EngineOptions, NoiseModel, StateVector, TierCounts, TrialOp, TrialProgram};
use rand::Rng;
use std::collections::HashMap;

fn machine() -> Machine {
    Machine::ibmq16_on_day(2019, 0)
}

/// A physical circuit whose mid-circuit measurement has a genuinely random
/// outcome (p1 = 0.5) and is *not* sinkable — later gates reference the
/// measured qubit — so the engine's dominant-path walker diverges on about
/// half the trials and must fall back to its pre-measure checkpoint.
fn coin_flip_circuit() -> Circuit {
    let mut c = Circuit::new(3);
    c.h(Qubit(0));
    c.measure(Qubit(0), nisq_ir::Clbit(0));
    c.cnot(Qubit(0), Qubit(1));
    c.h(Qubit(2));
    c.cnot(Qubit(2), Qubit(1));
    c.measure(Qubit(1), nisq_ir::Clbit(1));
    c.measure(Qubit(2), nisq_ir::Clbit(2));
    c
}

/// Reference aggregation: run every trial through the single-trial path.
fn reference_counts(program: &TrialProgram, seed: u64, trials: u32) -> HashMap<u128, u32> {
    let mut scratch = program.make_scratch();
    let mut counts = HashMap::new();
    for trial in 0..trials {
        let mut rng = TrialProgram::trial_rng(seed, trial);
        let key = program.run_trial(&mut scratch, &mut rng);
        *counts.entry(key).or_insert(0) += 1;
    }
    counts
}

fn engine_counts_with(
    machine: &Machine,
    program: &TrialProgram,
    seed: u64,
    trials: u32,
    threads: usize,
    options: EngineOptions,
) -> (HashMap<u128, u32>, TierCounts) {
    let mut config = SimulatorConfig::with_trials(trials, seed);
    config.threads = threads;
    config.engine = options;
    let sim = Simulator::new(machine, config);
    let (result, tiers) = sim.run_program_with_stats(program);
    let mut counts = HashMap::new();
    for (bits, n) in result.counts() {
        let mut key = 0u128;
        for (i, &b) in bits.iter().enumerate() {
            if b {
                key |= 1u128 << i;
            }
        }
        *counts.entry(key).or_insert(0) += n;
    }
    (counts, tiers)
}

fn engine_counts(
    machine: &Machine,
    program: &TrialProgram,
    seed: u64,
    trials: u32,
    threads: usize,
) -> (HashMap<u128, u32>, TierCounts) {
    engine_counts_with(
        machine,
        program,
        seed,
        trials,
        threads,
        EngineOptions::default(),
    )
}

/// Total variation distance between two empirical outcome distributions.
fn total_variation(a: &HashMap<u128, u32>, b: &HashMap<u128, u32>, trials: u32) -> f64 {
    let mut keys: Vec<u128> = a.keys().chain(b.keys()).copied().collect();
    keys.sort_unstable();
    keys.dedup();
    let n = f64::from(trials);
    0.5 * keys
        .iter()
        .map(|k| {
            let pa = f64::from(a.get(k).copied().unwrap_or(0)) / n;
            let pb = f64::from(b.get(k).copied().unwrap_or(0)) / n;
            (pa - pb).abs()
        })
        .sum::<f64>()
}

#[test]
fn exact_engine_is_bit_identical_to_reference_replay() {
    let m = machine();
    let mut programs: Vec<(String, TrialProgram)> = Vec::new();
    // Compiled paper benchmarks: swap-back executables with mid-circuit
    // measurements (BV8/qiskit) and terminal-sample-only programs.
    for (benchmark, config) in [
        (Benchmark::Bv8, CompilerConfig::qiskit()),
        (Benchmark::Toffoli, CompilerConfig::qiskit()),
        (Benchmark::Adder, CompilerConfig::r_smt_star(0.5)),
    ] {
        let compiled = Compiler::new(&m, config)
            .compile(&benchmark.circuit())
            .unwrap();
        programs.push((
            format!("{benchmark}"),
            TrialProgram::lower(compiled.physical_circuit(), &m, &NoiseModel::full()),
        ));
    }
    // A coin-flip mid-measure: exercises the divergence fallback on ~half
    // of all trials, under full noise and in the noiseless limit.
    for noise_model in [NoiseModel::full(), NoiseModel::ideal()] {
        programs.push((
            "coin-flip".into(),
            TrialProgram::lower(&coin_flip_circuit(), &m, &noise_model),
        ));
    }

    for (name, program) in &programs {
        for seed in [1u64, 42] {
            let reference = reference_counts(program, seed, 1536);
            let (engine, tiers) =
                engine_counts_with(&m, program, seed, 1536, 4, EngineOptions::exact());
            assert_eq!(&engine, &reference, "{name} seed {seed} diverged");
            assert_eq!(tiers.total(), 1536, "{name}: tiers must partition trials");
            assert_eq!(tiers.pauli_prop, 0, "{name}: tier 0 was disabled");
        }
    }
}

/// A deep 12-qubit non-Clifford circuit (T gates in every layer) with one
/// unsinkable mid-circuit measurement: wide enough for the memo's
/// state-size gate, non-Clifford so tier 0 cannot absorb its error trials,
/// and shaped to exercise *both* memo entry kinds — errors before the mid
/// measure cache a pre-measure checkpoint, errors after it cache a
/// perturbed terminal CDF.
fn deep_nonclifford_circuit() -> Circuit {
    let qubits = 12;
    let mut c = Circuit::new(qubits);
    for layer in 0..4 {
        for q in 0..qubits {
            if (q + layer) % 3 == 0 {
                c.t(Qubit(q));
            } else {
                c.h(Qubit(q));
            }
        }
        let mut q = layer % 2;
        while q + 1 < qubits {
            c.cnot(Qubit(q), Qubit(q + 1));
            q += 2;
        }
        if layer == 1 {
            c.measure(Qubit(0), nisq_ir::Clbit(0));
        }
    }
    c.measure_all();
    c
}

#[test]
fn memoized_trials_are_bit_identical_to_cold() {
    let m = machine();
    // Modest error mass (CNOT+readout noise keeps λ < 1) so the memo
    // engages. Seeds are fixed: the memo is deterministic, so hit counts
    // are reproducible.
    {
        let benchmark = "deep-12q";
        let program = TrialProgram::lower(
            &deep_nonclifford_circuit(),
            &m,
            &NoiseModel::cnot_and_readout_only(),
        );
        assert!(
            program.survival_probability() > (-1.0f64).exp(),
            "memo λ-gate would disable: survival {}",
            program.survival_probability()
        );
        let memoized = EngineOptions {
            pauli_prop: false,
            suffix_memo: true,
        };
        let cold = EngineOptions {
            pauli_prop: false,
            suffix_memo: false,
        };
        let (with_memo, memo_tiers) = engine_counts_with(&m, &program, 7, 4096, 2, memoized);
        let (without, cold_tiers) = engine_counts_with(&m, &program, 7, 4096, 2, cold);
        assert_eq!(
            with_memo, without,
            "{benchmark}: memoized outcomes diverged from cold"
        );
        assert_eq!(cold_tiers.memo_hits + cold_tiers.memo_misses, 0);
        assert_eq!(
            (
                memo_tiers.error_free,
                memo_tiers.pauli_prop,
                memo_tiers.checkpointed,
                memo_tiers.full_replay
            ),
            (
                cold_tiers.error_free,
                cold_tiers.pauli_prop,
                cold_tiers.checkpointed,
                cold_tiers.full_replay
            ),
            "{benchmark}: memoization must not move trials between tiers"
        );
        assert!(
            memo_tiers.memo_misses > 0,
            "{benchmark}: memo never engaged — the test is vacuous"
        );
        assert!(
            memo_tiers.memo_hits > 0,
            "{benchmark}: no memo hits at this seed — pick another workload"
        );
    }
}

#[test]
fn tier0_outcomes_match_numeric_reference_within_tv_bound() {
    // These benchmarks compile to fully-Clifford executables, so the
    // default engine serves them on the stabilizer-tableau backend:
    // error-free trials sample the terminal affine subspace, error trials
    // twist it with the propagated Pauli's X mask. The per-trial outcome
    // distribution is identical to the dense engine's (a Pauli permutes
    // basis probabilities, and the affine sampler draws the exact
    // stabilizer-support distribution), but the draw-to-outcome mapping
    // differs on *every* trial, so the two engines produce different —
    // equally distributed — outcome streams. This is the cross-backend
    // equivalence gate: tableau vs. dense-exact at fixed seeds.
    //
    // Tolerance: the runs are independent samples of the same
    // distribution, so the empirical TV concentrates around
    // E[TV] ≈ Σ_k √(2 p_k q_k / (π N)) — for BV8/qiskit at 8192 trials
    // (outcomes dominated by a handful of keys) that is under 0.03, and
    // measured TV at these seeds halves with each 4× in N (pure sampling
    // noise, no distributional offset). We assert 0.07, documented
    // headroom of ~2× at the fixed seeds below.
    let m = machine();
    for (benchmark, config) in [
        (Benchmark::Bv8, CompilerConfig::qiskit()),
        (Benchmark::Bv8, CompilerConfig::r_smt_star(0.5)),
        (Benchmark::Bv4, CompilerConfig::qiskit()),
    ] {
        let compiled = Compiler::new(&m, config)
            .compile(&benchmark.circuit())
            .unwrap();
        let program = TrialProgram::lower(compiled.physical_circuit(), &m, &NoiseModel::full());
        assert_eq!(
            program.clifford_suffix_from(),
            0,
            "{benchmark} compiles to a Clifford-only executable"
        );
        let trials = 8192u32;
        for seed in [11u64, 23] {
            let (fast, fast_tiers) =
                engine_counts_with(&m, &program, seed, trials, 4, EngineOptions::default());
            let (exact, exact_tiers) =
                engine_counts_with(&m, &program, seed, trials, 4, EngineOptions::exact());
            assert!(
                fast_tiers.pauli_prop > 0,
                "{benchmark}: tier 0 never engaged"
            );
            // The default engine must have selected the tableau backend
            // for a Clifford-only program; exact() must force dense.
            assert_eq!(fast_tiers.backend, nisq_sim::BackendKind::Tableau);
            assert_eq!(exact_tiers.backend, nisq_sim::BackendKind::Dense);
            // Tier 0 absorbs exactly the trials the exact engine served
            // from checkpoints/full replays after its own divergences.
            assert_eq!(fast_tiers.total(), u64::from(trials));
            assert_eq!(exact_tiers.total(), u64::from(trials));
            assert_eq!(fast_tiers.error_free, exact_tiers.error_free);

            let tv = total_variation(&fast, &exact, trials);
            assert!(
                tv < 0.07,
                "{benchmark} seed {seed}: TV {tv} exceeds the documented bound"
            );
        }
    }
}

#[test]
fn aliased_mid_measure_clbits_agree_across_backends() {
    // Regression (formerly examples/alias_repro.rs): a fully-Clifford
    // circuit whose two mid-circuit measures write the SAME clbit. The
    // second write must shadow the first identically on the tableau fast
    // path and the dense-exact engine — the bug class this pins is the
    // fast path resolving aliased clbit writes in a different order.
    let m = machine();
    let mut c = Circuit::with_clbits(2, 2);
    c.x(Qubit(0));
    c.measure(Qubit(0), nisq_ir::Clbit(0)); // ideal outcome 1
    c.x(Qubit(1)); // noise site on this gate
    c.measure(Qubit(1), nisq_ir::Clbit(0)); // ideal outcome 1, same clbit
                                            // Keep both measures mid-circuit (the qubits are used again), then a
                                            // terminal measure so the programs end in a sample.
    c.x(Qubit(0));
    c.x(Qubit(1));
    c.measure(Qubit(0), nisq_ir::Clbit(1));
    let program = TrialProgram::lower(&c, &m, &NoiseModel::full());

    let trials = 32768u32;
    let (fast, fast_tiers) =
        engine_counts_with(&m, &program, 42, trials, 4, EngineOptions::default());
    let (exact, exact_tiers) =
        engine_counts_with(&m, &program, 42, trials, 4, EngineOptions::exact());
    assert_eq!(fast_tiers.backend, nisq_sim::BackendKind::Tableau);
    assert_eq!(exact_tiers.backend, nisq_sim::BackendKind::Dense);
    let tv = total_variation(&fast, &exact, trials);
    assert!(
        tv < 0.03,
        "aliased-clbit TV {tv} exceeds the sampling bound"
    );
}

/// An interleaved-draw replayer with no fusion, no relabeling, no
/// pre-sampling and no measurement sinking: every gate and error is applied
/// directly through the public [`StateVector`] API, drawing stochastic
/// outcomes at the point they occur (the pre-rework trial semantics).
/// Different RNG stream layout than the engine, so only distributions can
/// be compared.
fn interleaved_success_rate(
    program: &TrialProgram,
    expected_key: u64,
    seed: u64,
    trials: u32,
) -> f64 {
    let n = program.num_qubits();
    let mut hits = 0u32;
    for trial in 0..trials {
        let mut rng = TrialProgram::trial_rng(seed ^ 0x5eed, trial);
        let mut state = StateVector::new(n);
        let mut clbits = 0u64;
        let apply_pauli = |state: &mut StateVector, q: u8, p: noise::Pauli| {
            if let Some(kind) = p.gate_kind() {
                state.apply_single(usize::from(q), kind);
            }
        };
        for op in program.ops() {
            match *op {
                TrialOp::Unitary { qubit, ref matrix } => {
                    state.apply_matrix(usize::from(qubit), matrix);
                }
                TrialOp::Cnot { control, target } => {
                    state.apply_cnot(usize::from(control), usize::from(target));
                }
                TrialOp::Swap {
                    a,
                    b,
                    noise: ref swap_noise,
                } => match swap_noise {
                    None => state.apply_swap(usize::from(a), usize::from(b)),
                    Some(sn) => {
                        for k in 0..3 {
                            let (c, t) = if k == 1 { (b, a) } else { (a, b) };
                            state.apply_cnot(usize::from(c), usize::from(t));
                            let (pc, pt) = noise::depolarizing_2q(sn.p_depol, &mut rng);
                            let (p_dc, p_dt) = if k == 1 {
                                (sn.p_dephase_b, sn.p_dephase_a)
                            } else {
                                (sn.p_dephase_a, sn.p_dephase_b)
                            };
                            apply_pauli(&mut state, c, pc);
                            apply_pauli(&mut state, t, pt);
                            if p_dc > 0.0 && rng.gen_bool(p_dc) {
                                state.apply_single(usize::from(c), GateKind::Z);
                            }
                            if p_dt > 0.0 && rng.gen_bool(p_dt) {
                                state.apply_single(usize::from(t), GateKind::Z);
                            }
                        }
                    }
                },
                TrialOp::GateNoise {
                    qubit,
                    p_depol,
                    p_dephase,
                } => {
                    let p = noise::depolarizing_1q(p_depol, &mut rng);
                    apply_pauli(&mut state, qubit, p);
                    if p_dephase > 0.0 && rng.gen_bool(p_dephase) {
                        state.apply_single(usize::from(qubit), GateKind::Z);
                    }
                }
                TrialOp::CnotNoise {
                    control,
                    target,
                    p_depol,
                    p_dephase_control,
                    p_dephase_target,
                } => {
                    let (pc, pt) = noise::depolarizing_2q(p_depol, &mut rng);
                    apply_pauli(&mut state, control, pc);
                    apply_pauli(&mut state, target, pt);
                    if p_dephase_control > 0.0 && rng.gen_bool(p_dephase_control) {
                        state.apply_single(usize::from(control), GateKind::Z);
                    }
                    if p_dephase_target > 0.0 && rng.gen_bool(p_dephase_target) {
                        state.apply_single(usize::from(target), GateKind::Z);
                    }
                }
                TrialOp::Measure {
                    qubit,
                    clbit,
                    p_flip,
                } => {
                    let mut outcome = state.measure(usize::from(qubit), &mut rng);
                    if p_flip > 0.0 && rng.gen_bool(p_flip) {
                        outcome = !outcome;
                    }
                    if outcome {
                        clbits |= 1u64 << clbit;
                    }
                }
                TrialOp::ChannelNoise { .. }
                | TrialOp::ChannelNoise2 { .. }
                | TrialOp::KrausChannel { .. } => {
                    unreachable!("these programs are lowered without a noise spec")
                }
                TrialOp::TerminalSample { ref measures } => {
                    let basis = state.sample_basis(&mut rng);
                    for &(qubit, clbit, p_flip) in measures {
                        let mut outcome = basis >> qubit & 1 == 1;
                        if p_flip > 0.0 && rng.gen_bool(p_flip) {
                            outcome = !outcome;
                        }
                        if outcome {
                            clbits |= 1u64 << clbit;
                        }
                    }
                }
            }
        }
        if clbits == expected_key {
            hits += 1;
        }
    }
    f64::from(hits) / f64::from(trials)
}

#[test]
fn engine_statistically_matches_interleaved_reference() {
    // The engine restructures every trial's draw order (error pattern
    // first, measurements after) and — with tier 0 — the draw-to-outcome
    // mapping of Clifford-suffix error trials. The simulated distribution
    // must not move: success rates of the engine and of a naive
    // interleaved-draw replayer agree within sampling noise at 8192 trials
    // (~3 sigma of a Bernoulli at p ~ 0.5 is about 0.017; 0.03 leaves
    // headroom).
    let m = machine();
    for (benchmark, config) in [
        (Benchmark::Bv8, CompilerConfig::qiskit()),
        (Benchmark::Toffoli, CompilerConfig::qiskit()),
    ] {
        let compiled = Compiler::new(&m, config)
            .compile(&benchmark.circuit())
            .unwrap();
        let program = TrialProgram::lower(compiled.physical_circuit(), &m, &NoiseModel::full());
        let expected = benchmark.expected_output();
        let mut expected_key = 0u64;
        for (i, &b) in expected.iter().enumerate() {
            if b {
                expected_key |= 1u64 << i;
            }
        }

        let trials = 8192u32;
        let sim = Simulator::new(&m, SimulatorConfig::with_trials(trials, 11));
        let engine_rate = sim.run_program(&program).probability_of(&expected);
        let interleaved_rate = interleaved_success_rate(&program, expected_key, 11, trials);
        assert!(
            (engine_rate - interleaved_rate).abs() < 0.03,
            "{benchmark}: engine {engine_rate} vs interleaved {interleaved_rate}"
        );
    }
}

#[test]
fn same_seed_reproduces_the_report_bit_for_bit() {
    let plan = SweepPlan::new()
        .benchmarks([Benchmark::Bv8, Benchmark::Toffoli])
        .config("Qiskit", CompilerConfig::qiskit())
        .config("R-SMT*", CompilerConfig::r_smt_star(0.5))
        .days([0, 1])
        .with_trials(512)
        .per_cell_sim_seed(99);
    let a = Session::new().run(&plan).unwrap();
    let b = Session::new().run(&plan).unwrap();
    for (ca, cb) in a.cells.iter().zip(b.cells.iter()) {
        assert_eq!(
            ca.success_rate, cb.success_rate,
            "{}/{}",
            ca.circuit, ca.day
        );
        assert_eq!(ca.tiers, cb.tiers, "{}/{}", ca.circuit, ca.day);
    }
    assert_eq!(a.tiers, b.tiers);
}

#[test]
fn counts_and_occupancy_are_thread_count_invariant() {
    let m = machine();
    // BV8/qiskit is Clifford-only with mid-circuit measures: tier 0 serves
    // every error trial, so this pins the tier-0 path itself. The deep
    // 12-qubit T-gate circuit has a live memo (wide enough for the
    // state-size gate): pins the memoized tier-2 path. Both run with the
    // default (tier 0 + memo) options.
    let bv8 = Compiler::new(&m, CompilerConfig::qiskit())
        .compile(&Benchmark::Bv8.circuit())
        .unwrap();
    let programs = [
        (
            "BV8/qiskit",
            TrialProgram::lower(bv8.physical_circuit(), &m, &NoiseModel::full()),
            true,
        ),
        (
            "deep-12q",
            TrialProgram::lower(
                &deep_nonclifford_circuit(),
                &m,
                &NoiseModel::cnot_and_readout_only(),
            ),
            false,
        ),
    ];
    for (benchmark, program, expect_tier0) in &programs {
        let expect_tier0 = *expect_tier0;
        let (serial, serial_tiers) = engine_counts(&m, program, 5, 3073, 1);
        if expect_tier0 {
            assert!(serial_tiers.pauli_prop > 0, "expected tier-0 occupancy");
        } else {
            assert!(
                serial_tiers.memo_hits + serial_tiers.memo_misses > 0,
                "expected memo activity, got {serial_tiers:?}"
            );
        }
        for threads in [2, 3, 8] {
            let (parallel, tiers) = engine_counts(&m, program, 5, 3073, threads);
            assert_eq!(
                serial, parallel,
                "{benchmark}: counts diverged at {threads} threads"
            );
            assert_eq!(
                serial_tiers, tiers,
                "{benchmark}: occupancy diverged at {threads} threads"
            );
        }
    }
}

#[test]
fn multinomial_aggregation_is_thread_count_invariant() {
    let m = machine();
    // R-SMT* BV8 is tier-1 dominated (few physical gates, low error mass):
    // most trials take the multinomial shortcut, so this pins the tier-1
    // aggregation itself, not just the replay path.
    let compiled = Compiler::new(&m, CompilerConfig::r_smt_star(0.5))
        .compile(&Benchmark::Bv8.circuit())
        .unwrap();
    let program = TrialProgram::lower(compiled.physical_circuit(), &m, &NoiseModel::full());
    let (serial, serial_tiers) = engine_counts(&m, &program, 5, 3073, 1);
    assert!(
        serial_tiers.error_free
            > serial_tiers.pauli_prop + serial_tiers.checkpointed + serial_tiers.full_replay,
        "expected a tier-1-dominated workload, got {serial_tiers:?}"
    );
    for threads in [2, 3, 8] {
        let (parallel, tiers) = engine_counts(&m, &program, 5, 3073, threads);
        assert_eq!(serial, parallel, "counts diverged at {threads} threads");
        assert_eq!(serial_tiers, tiers, "tiers diverged at {threads} threads");
    }
}

#[test]
fn clifford_suffix_classification_follows_the_gate_set() {
    let m = machine();
    // H + CNOT only: the whole program is Clifford.
    let mut clifford = Circuit::new(3);
    clifford.h(Qubit(0)).s(Qubit(1));
    clifford.cnot(Qubit(0), Qubit(1));
    clifford.cnot(Qubit(1), Qubit(2));
    clifford.h(Qubit(2));
    clifford.cnot(Qubit(1), Qubit(2));
    clifford.measure_all();
    let program = TrialProgram::lower(&clifford, &m, &NoiseModel::full());
    assert_eq!(program.clifford_suffix_from(), 0);

    // A T in the middle bounds the suffix: the boundary falls after the
    // unitary op that fused the T.
    let mut with_t = Circuit::new(3);
    with_t.h(Qubit(0));
    with_t.cnot(Qubit(0), Qubit(1));
    with_t.t(Qubit(1));
    with_t.cnot(Qubit(1), Qubit(2));
    with_t.h(Qubit(2));
    with_t.cnot(Qubit(0), Qubit(2));
    with_t.measure_all();
    let program = TrialProgram::lower(&with_t, &m, &NoiseModel::full());
    let boundary = program.clifford_suffix_from();
    assert!(boundary > 0, "the fused T must bound the suffix");
    for (i, op) in program.ops().iter().enumerate().skip(boundary) {
        if matches!(op, TrialOp::Unitary { .. }) {
            assert!(
                program.clifford_action(i).is_some(),
                "op {i} past the boundary must be Clifford"
            );
        }
    }
}

#[test]
fn tier_occupancy_partitions_trials_and_aggregates_into_reports() {
    let m = machine();

    // Ideal noise: every trial is error-free by construction.
    let compiled = Compiler::new(&m, CompilerConfig::qiskit())
        .compile(&Benchmark::Toffoli.circuit())
        .unwrap();
    let ideal = TrialProgram::lower(compiled.physical_circuit(), &m, &NoiseModel::ideal());
    let (_, tiers) = engine_counts(&m, &ideal, 3, 777, 4);
    assert_eq!(
        tiers,
        TierCounts {
            error_free: 777,
            ..TierCounts::default()
        }
    );

    // Full noise on a swap-heavy executable: the numeric tiers fire and
    // the counts partition the trial budget.
    let noisy = TrialProgram::lower(compiled.physical_circuit(), &m, &NoiseModel::full());
    let (_, tiers) = engine_counts(&m, &noisy, 3, 4096, 4);
    assert_eq!(tiers.total(), 4096);
    assert!(tiers.error_free > 0, "{tiers:?}");
    assert!(tiers.checkpointed > 0, "{tiers:?}");

    // A Clifford-only executable under full noise: tier 0 absorbs the
    // error trials (checkpoints still serve mid-measure divergences).
    let bv = Compiler::new(&m, CompilerConfig::qiskit())
        .compile(&Benchmark::Bv8.circuit())
        .unwrap();
    let bv_program = TrialProgram::lower(bv.physical_circuit(), &m, &NoiseModel::full());
    let (_, tiers) = engine_counts(&m, &bv_program, 3, 4096, 4);
    assert_eq!(tiers.total(), 4096);
    assert!(tiers.pauli_prop > 0, "{tiers:?}");
    assert_eq!(tiers.full_replay, 0, "{tiers:?}");

    // Report plumbing: per-cell occupancy sums to the report totals, cells
    // without simulation report zeros, and the JSON round-trips.
    let plan = SweepPlan::new()
        .benchmarks([Benchmark::Bv4, Benchmark::Toffoli])
        .config("Qiskit", CompilerConfig::qiskit())
        .with_trials(256)
        .fixed_sim_seed(4);
    let report = Session::new().run(&plan).unwrap();
    let mut summed = TierStats::default();
    for cell in &report.cells {
        assert_eq!(cell.tiers.total(), 256, "{}", cell.circuit);
        summed.merge(&cell.tiers);
    }
    assert_eq!(summed, report.tiers);
    let parsed = nisq_exp::Report::from_json(&report.to_json()).unwrap();
    assert_eq!(parsed, report);

    let compile_only = Session::new()
        .run(
            &SweepPlan::new()
                .benchmark(Benchmark::Bv4)
                .config("Qiskit", CompilerConfig::qiskit()),
        )
        .unwrap();
    assert_eq!(compile_only.cells[0].tiers, TierStats::default());
    assert_eq!(compile_only.tiers, TierStats::default());
}
