//! Compare every compiler configuration of the paper's Table 1 on a single
//! benchmark: success rate, duration, swap count and compile time — one
//! six-config `SweepPlan` cell row.
//!
//! Run with `cargo run --release --example mapper_comparison [benchmark]`
//! where `benchmark` is one of the Table 2 names (default: Toffoli).

use nisq::prelude::*;

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "Toffoli".to_string());
    let benchmark = Benchmark::all()
        .into_iter()
        .find(|b| b.name().eq_ignore_ascii_case(&name))
        .unwrap_or_else(|| {
            eprintln!("unknown benchmark {name}, using Toffoli");
            Benchmark::Toffoli
        });

    let plan = SweepPlan::new()
        .benchmark(benchmark)
        .table1_configs()
        .with_trials(8192)
        .fixed_sim_seed(3);
    let report = Session::new().run(&plan).expect("benchmark fits on IBMQ16");

    println!(
        "Mapper comparison for {} on IBMQ16 day-0 calibration (8192 trials)\n",
        benchmark
    );
    println!(
        "{:<12} {:>10} {:>10} {:>7} {:>12} {:>12}",
        "Mapper", "success", "est. rel.", "swaps", "duration", "compile (ms)"
    );
    for (label, _) in plan.configs() {
        let cell = report.require(benchmark.name(), label, 0);
        println!(
            "{:<12} {:>10.3} {:>10.3} {:>7} {:>12} {:>12.2}",
            label,
            cell.success(),
            cell.estimated_reliability,
            cell.swap_count,
            cell.duration_slots,
            cell.compile_ms
        );
    }
    println!(
        "\nThe noise-adaptive mappers (starred) should match or beat the \
         calibration-unaware ones, with R-SMT* and GreedyE* at the top."
    );
}
