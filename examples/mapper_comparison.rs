//! Compare every compiler configuration of the paper's Table 1 on a single
//! benchmark: success rate, duration, swap count and compile time.
//!
//! Run with `cargo run --release --example mapper_comparison [benchmark]`
//! where `benchmark` is one of the Table 2 names (default: Toffoli).

use nisq::prelude::*;

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "Toffoli".to_string());
    let benchmark = Benchmark::all()
        .into_iter()
        .find(|b| b.name().eq_ignore_ascii_case(&name))
        .unwrap_or_else(|| {
            eprintln!("unknown benchmark {name}, using Toffoli");
            Benchmark::Toffoli
        });

    let machine = Machine::ibmq16_on_day(2019, 0);
    let circuit = benchmark.circuit();
    let expected = benchmark.expected_output();
    let simulator = Simulator::new(&machine, SimulatorConfig::with_trials(8192, 3));

    println!(
        "Mapper comparison for {} on {} (8192 trials)\n",
        benchmark, machine
    );
    println!(
        "{:<12} {:>10} {:>10} {:>7} {:>12} {:>12}",
        "Mapper", "success", "est. rel.", "swaps", "duration", "compile (ms)"
    );
    for config in CompilerConfig::table1() {
        let compiled = Compiler::new(&machine, config)
            .compile(&circuit)
            .expect("benchmark fits on IBMQ16");
        let success = simulator.success_rate(&compiled, &expected);
        println!(
            "{:<12} {:>10.3} {:>10.3} {:>7} {:>12} {:>12.2}",
            config.algorithm.name(),
            success,
            compiled.estimated_reliability(),
            compiled.swap_count(),
            compiled.duration_slots(),
            compiled.compile_time().as_secs_f64() * 1000.0
        );
    }
    println!(
        "\nThe noise-adaptive mappers (starred) should match or beat the \
         calibration-unaware ones, with R-SMT* and GreedyE* at the top."
    );
}
