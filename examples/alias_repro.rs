// Repro: aliased mid-measure clbits under the tableau fast path.
use nisq::prelude::*;
use nisq_ir::{Clbit, Qubit};
use nisq_sim::{EngineOptions, Simulator, SimulatorConfig};
use std::collections::HashMap;

fn main() {
    let machine = Machine::ibmq16_on_day(2019, 0);
    // Fully-Clifford circuit: two mid measures write the SAME clbit 0.
    let mut c = Circuit::with_clbits(2, 2);
    c.x(Qubit(0));
    c.measure(Qubit(0), Clbit(0)); // ideal outcome 1
    c.x(Qubit(1));                 // noise site on this gate
    c.measure(Qubit(1), Clbit(0)); // ideal outcome 1, same clbit
    // keep both measures mid (qubits used later), then terminal measure.
    c.x(Qubit(0));
    c.x(Qubit(1));
    c.measure(Qubit(0), Clbit(1));

    let trials = 200_000u32;
    let run = |exact: bool| -> HashMap<Vec<bool>, u32> {
        let mut config = SimulatorConfig::with_trials(trials, 42);
        if exact {
            config.engine = EngineOptions::exact();
        }
        let sim = Simulator::new(&machine, config);
        let program = sim.prepare(&c);
        let (result, tiers) = sim.run_program_with_stats(&program);
        eprintln!("exact={exact} backend={} tiers: ef={} pp={} cp={} fr={}",
            tiers.backend, tiers.error_free, tiers.pauli_prop, tiers.checkpointed, tiers.full_replay);
        result.counts().clone().into_iter().collect()
    };
    let fast = run(false);
    let exact = run(true);
    println!("fast : {fast:?}");
    println!("exact: {exact:?}");
    let mut keys: Vec<_> = fast.keys().chain(exact.keys()).cloned().collect();
    keys.sort(); keys.dedup();
    let n = trials as f64;
    let tv: f64 = keys.iter().map(|k| {
        let a = *fast.get(k).unwrap_or(&0) as f64 / n;
        let b = *exact.get(k).unwrap_or(&0) as f64 / n;
        (a - b).abs()
    }).sum::<f64>() / 2.0;
    println!("TV distance = {tv:.5}");
}
