//! Compile-time scalability of the optimal and heuristic mappers on random
//! circuits (a quick interactive version of Figure 11): one compile-only
//! `SweepPlan` over random instances, with the machine grid sized to each
//! circuit.
//!
//! Run with `cargo run --release --example scalability_sweep`.

use nisq::ir::{random_circuit, RandomCircuitConfig};
use nisq::prelude::*;
use std::time::Duration;

fn main() {
    let instances = [(4usize, 128usize), (8, 128), (8, 256), (16, 256), (24, 256)];
    let exact_config =
        CompilerConfig::r_smt_star(0.5).with_solver_budget(u64::MAX, Some(Duration::from_secs(10)));

    let mut plan = SweepPlan::new()
        .config("R-SMT*", exact_config)
        .config("GreedyE*", CompilerConfig::greedy_e())
        .grid_per_circuit();
    for &(qubits, gates) in &instances {
        plan = plan.circuit(CircuitSpec::new(
            format!("{qubits}q / {gates} gates"),
            random_circuit(RandomCircuitConfig::new(qubits, gates, 1)),
        ));
    }
    let report = Session::new().run(&plan).expect("random circuits compile");

    println!("Compile time of R-SMT* (exact, 10s budget) vs GreedyE* on random circuits\n");
    println!(
        "{:<20} {:>16} {:>16}",
        "Instance", "R-SMT* (ms)", "GreedyE* (ms)"
    );
    for &(qubits, gates) in &instances {
        let instance = format!("{qubits}q / {gates} gates");
        println!(
            "{:<20} {:>16.1} {:>16.1}",
            instance,
            report.require(&instance, "R-SMT*", 0).compile_ms,
            report.require(&instance, "GreedyE*", 0).compile_ms,
        );
    }
    println!(
        "\nAs in the paper's Figure 11, the exact method's compile time explodes with qubit \
         count (hitting its budget) while the greedy heuristic stays near-instant."
    );
}
