//! Compile-time scalability of the optimal and heuristic mappers on random
//! circuits (a quick interactive version of Figure 11).
//!
//! Run with `cargo run --release --example scalability_sweep`.

use nisq::prelude::*;
use nisq_ir::{random_circuit, RandomCircuitConfig};
use std::time::{Duration, Instant};

fn main() {
    println!("Compile time of R-SMT* (exact, 10s budget) vs GreedyE* on random circuits\n");
    println!(
        "{:<20} {:>16} {:>16}",
        "Instance", "R-SMT* (ms)", "GreedyE* (ms)"
    );
    for (qubits, gates) in [(4usize, 128usize), (8, 128), (8, 256), (16, 256), (24, 256)] {
        let topology = GridTopology::at_least(qubits);
        let calibration = CalibrationGenerator::new(topology.clone(), 2019).day(0);
        let machine = Machine::new("synthetic", topology, calibration);
        let circuit = random_circuit(RandomCircuitConfig::new(qubits, gates, 1));

        let exact_config = CompilerConfig::r_smt_star(0.5)
            .with_solver_budget(u64::MAX, Some(Duration::from_secs(10)));
        let start = Instant::now();
        Compiler::new(&machine, exact_config)
            .compile(&circuit)
            .expect("random circuit compiles");
        let exact_ms = start.elapsed().as_secs_f64() * 1000.0;

        let start = Instant::now();
        Compiler::new(&machine, CompilerConfig::greedy_e())
            .compile(&circuit)
            .expect("random circuit compiles");
        let greedy_ms = start.elapsed().as_secs_f64() * 1000.0;

        println!(
            "{:<20} {:>16.1} {:>16.1}",
            format!("{qubits}q / {gates} gates"),
            exact_ms,
            greedy_ms
        );
    }
    println!(
        "\nAs in the paper's Figure 11, the exact method's compile time explodes with qubit \
         count (hitting its budget) while the greedy heuristic stays near-instant."
    );
}
