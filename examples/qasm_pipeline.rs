//! A full OpenQASM pipeline: parse an externally-written OpenQASM 2.0
//! program, compile it noise-adaptively through a session, and emit the
//! hardware executable as OpenQASM again — the top-to-bottom flow the
//! paper's framework provides for Scaffold programs.
//!
//! Run with `cargo run --release --example qasm_pipeline`.

use nisq::ir::qasm;
use nisq::prelude::*;

/// A 3-qubit GHZ-state preparation written directly in OpenQASM, as a user
/// of the library might supply it.
const GHZ_QASM: &str = r#"
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
creg c[3];
h q[0];
cx q[0], q[1];
cx q[1], q[2];
measure q[0] -> c[0];
measure q[1] -> c[1];
measure q[2] -> c[2];
"#;

fn main() {
    let circuit = qasm::parse(GHZ_QASM).expect("the GHZ program is valid OpenQASM");
    println!(
        "Parsed program: {} qubits, {} gates, {} CNOTs",
        circuit.num_qubits(),
        circuit.gate_count(),
        circuit.cnot_count()
    );

    let mut session = Session::new();
    let machine = session.machine(TopologySpec::Ibmq16, 2019, 0);
    let compiled = session
        .compile(&machine, &CompilerConfig::greedy_e(), &circuit)
        .expect("GHZ fits on IBMQ16");

    println!(
        "\nGreedyE* placement: {:?}",
        compiled.placement().as_slice()
    );
    println!(
        "swaps: {}, duration: {} timeslots, estimated reliability: {:.3}",
        compiled.swap_count(),
        compiled.duration_slots(),
        compiled.estimated_reliability()
    );

    // GHZ measures as 000 or 111 with equal probability; check the compiled
    // executable preserves that under a noiseless simulation.
    let sim = Simulator::new(&machine, SimulatorConfig::ideal(2048));
    let result = sim.run(compiled.physical_circuit());
    let p000 = result.probability_of(&[false, false, false]);
    let p111 = result.probability_of(&[true, true, true]);
    println!("\nNoiseless check: P(000) = {p000:.3}, P(111) = {p111:.3} (both should be ~0.5)");

    println!("\nEmitted hardware executable (OpenQASM 2.0):");
    for line in compiled.qasm().lines() {
        println!("  {line}");
    }
}
