//! The paper's central workflow: recompile every day against fresh
//! calibration data and watch how the noise-adaptive mapping tracks the
//! machine while a static mapping degrades.
//!
//! The adaptive arm is a one-line `SweepPlan` day sweep; the static arm
//! reuses one day-0 executable against every day's machine, which the
//! declarative API cannot express — it drives `Session::compile` and the
//! simulator directly, sharing the session's machine snapshots.
//!
//! Run with `cargo run --release --example daily_recompilation`.

use nisq::prelude::*;

fn main() {
    let benchmark = Benchmark::Toffoli;
    let circuit = benchmark.circuit();
    let expected = benchmark.expected_output();
    let days = 7;

    let mut session = Session::new();

    // The adaptive flow: recompile R-SMT* against each day's calibration.
    let plan = SweepPlan::new()
        .benchmark(benchmark)
        .config("R-SMT*", CompilerConfig::r_smt_star(0.5))
        .days(0..days)
        .with_trials(4096)
        .per_day_sim_seed(90);
    let report = session.run(&plan).expect("Toffoli fits on IBMQ16");

    // The static mapping: compiled once on day 0 with the duration-only
    // objective, then reused all week (what T-SMT* effectively does, since
    // topology and durations barely change).
    let day0 = session.machine(TopologySpec::Ibmq16, plan.machine_seed(), 0);
    let static_compiled = session
        .compile(
            &day0,
            &CompilerConfig::t_smt_star(RouteSelection::OneBendPaths),
            &circuit,
        )
        .expect("Toffoli fits on IBMQ16");

    println!("Daily recompilation study for {benchmark} over {days} days (4096 trials/day)\n");
    println!(
        "{:<6} {:>16} {:>16}",
        "Day", "static T-SMT*", "daily R-SMT*"
    );
    let mut static_total = 0.0;
    let mut adaptive_total = 0.0;
    for day in 0..days {
        let machine = session.machine(TopologySpec::Ibmq16, plan.machine_seed(), day);
        let simulator = Simulator::new(
            &machine,
            SimulatorConfig::with_trials(4096, 90 + day as u64),
        );
        let static_success = simulator.success_rate(&static_compiled, &expected);
        let adaptive_success = report.require("Toffoli", "R-SMT*", day).success();
        static_total += static_success;
        adaptive_total += adaptive_success;
        println!(
            "{:<6} {:>16.3} {:>16.3}",
            day, static_success, adaptive_success
        );
    }
    println!(
        "\nWeek average: static {:.3}, noise-adaptive {:.3} ({:.2}x)",
        static_total / days as f64,
        adaptive_total / days as f64,
        (adaptive_total / days as f64) / (static_total / days as f64).max(1e-4)
    );
}
