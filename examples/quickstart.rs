//! Quickstart: declare a one-benchmark workload, execute it through a
//! caching session, and compare the noise-adaptive mapper against the
//! Qiskit-style baseline.
//!
//! Run with `cargo run --release --example quickstart`.

use nisq::prelude::*;

fn main() {
    // The workload, declared rather than hand-rolled: 4-qubit
    // Bernstein-Vazirani under two mappers, 8192 noisy trials each (the
    // paper's real-hardware methodology), day-0 calibration.
    let benchmark = Benchmark::Bv4;
    let plan = SweepPlan::new()
        .benchmark(benchmark)
        .config("R-SMT*", CompilerConfig::r_smt_star(0.5))
        .config("Qiskit", CompilerConfig::qiskit())
        .with_trials(8192)
        .fixed_sim_seed(7);

    let circuit = benchmark.circuit();
    println!(
        "Program: {} ({} qubits, {} gates, {} CNOTs)",
        benchmark,
        circuit.num_qubits(),
        circuit.gate_count(),
        circuit.cnot_count()
    );

    // The session owns the machine snapshot and the compile caches; `run`
    // compiles every cell and measures its success rate.
    let mut session = Session::new();
    let report = session.run(&plan).expect("BV4 fits on IBMQ16");

    let adaptive = report.require("BV4", "R-SMT*", 0);
    let baseline = report.require("BV4", "Qiskit", 0);
    println!(
        "\nR-SMT* mapping : {} swaps, {} timeslots, estimated reliability {:.3}",
        adaptive.swap_count, adaptive.duration_slots, adaptive.estimated_reliability
    );
    println!(
        "Qiskit mapping : {} swaps, {} timeslots, estimated reliability {:.3}",
        baseline.swap_count, baseline.duration_slots, baseline.estimated_reliability
    );

    println!("\nSimulated success rates over 8192 trials:");
    println!("  R-SMT* : {:.3}", adaptive.success());
    println!("  Qiskit : {:.3}", baseline.success());
    println!(
        "  improvement: {:.2}x",
        adaptive.success() / baseline.success().max(1e-4)
    );

    // The compiled executable is plain OpenQASM 2.0 — fetch it from the
    // session's cache (this compile is a guaranteed hit).
    let machine = session.machine(TopologySpec::Ibmq16, plan.machine_seed(), 0);
    let compiled = session
        .compile(&machine, &CompilerConfig::r_smt_star(0.5), &circuit)
        .expect("cached compile");
    println!("\nFirst lines of the R-SMT* executable:");
    for line in compiled.qasm().lines().take(8) {
        println!("  {line}");
    }
}
