//! Quickstart: compile one benchmark with the noise-adaptive mapper and
//! compare its simulated success rate against the Qiskit-style baseline.
//!
//! Run with `cargo run --release --example quickstart`.

use nisq::prelude::*;

fn main() {
    // A machine snapshot: the IBMQ16 topology with today's (synthetic)
    // calibration data.
    let machine = Machine::ibmq16_on_day(2019, 0);
    println!("Target machine: {machine}");

    // The program: 4-qubit Bernstein-Vazirani, whose correct answer is known.
    let benchmark = Benchmark::Bv4;
    let circuit = benchmark.circuit();
    println!(
        "Program: {} ({} qubits, {} gates, {} CNOTs)",
        benchmark,
        circuit.num_qubits(),
        circuit.gate_count(),
        circuit.cnot_count()
    );

    // Compile with the reliability-optimal noise-adaptive mapper (R-SMT*)
    // and with the calibration-unaware baseline.
    let adaptive = Compiler::new(&machine, CompilerConfig::r_smt_star(0.5))
        .compile(&circuit)
        .expect("BV4 fits on IBMQ16");
    let baseline = Compiler::new(&machine, CompilerConfig::qiskit())
        .compile(&circuit)
        .expect("BV4 fits on IBMQ16");

    println!("\nR-SMT* mapping : {adaptive}");
    println!("Qiskit mapping : {baseline}");

    // Measure success rates with the noisy simulator (8192 trials, as in the
    // paper's real-hardware methodology).
    let simulator = Simulator::new(&machine, SimulatorConfig::with_trials(8192, 7));
    let expected = benchmark.expected_output();
    let adaptive_success = simulator.success_rate(&adaptive, &expected);
    let baseline_success = simulator.success_rate(&baseline, &expected);

    println!("\nSimulated success rates over 8192 trials:");
    println!("  R-SMT* : {adaptive_success:.3}");
    println!("  Qiskit : {baseline_success:.3}");
    println!(
        "  improvement: {:.2}x",
        adaptive_success / baseline_success.max(1e-4)
    );

    // The compiled executable is plain OpenQASM 2.0.
    println!("\nFirst lines of the R-SMT* executable:");
    for line in adaptive.qasm().lines().take(8) {
        println!("  {line}");
    }
}
