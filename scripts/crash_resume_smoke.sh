#!/usr/bin/env bash
# Crash-resume smoke test for `nisqc sweep --journal`: run a reference
# sweep, SIGKILL a journaled run of the same plan mid-flight, resume it
# from the journal, and require the resumed report to be byte-identical
# to the reference in canonical form. Then tear the journal's tail and
# prove recovery truncates and still resumes byte-identically.
#
# Usage: scripts/crash_resume_smoke.sh [path/to/nisqc]
set -euo pipefail

NISQC="${1:-target/release/nisqc}"
DIR="$(mktemp -d)"
trap 'rm -rf "$DIR"' EXIT

# 3 benchmarks x 6 mappers x 4 days = 72 cells: long enough to be killed
# mid-run, small enough for CI.
PLAN=(--benchmarks representative --mappers table1 --days 0..4 --trials 4096)
CELLS=72

echo "reference run..."
"$NISQC" sweep "${PLAN[@]}" --expect-cells "$CELLS" --output "$DIR/ref.json"
"$NISQC" sweep --canonicalize "$DIR/ref.json" --output "$DIR/ref.canon"

echo "journaled run (to be killed)..."
"$NISQC" sweep "${PLAN[@]}" --journal "$DIR/sweep.journal" --output "$DIR/killed.json" &
PID=$!
for _ in $(seq 1 600); do
    if [[ -f "$DIR/sweep.journal" ]] \
        && [[ "$(grep -c '"kind": "cell"' "$DIR/sweep.journal")" -ge 2 ]]; then
        break
    fi
    kill -0 "$PID" 2>/dev/null || { echo "FAIL: journaled run exited before it could be killed"; exit 1; }
    sleep 0.05
done
kill -9 "$PID"
wait "$PID" 2>/dev/null || true
DONE=$(grep -c '"kind": "cell"' "$DIR/sweep.journal")
echo "killed mid-run with $DONE cells journaled"
[[ ! -f "$DIR/killed.json" ]] || { echo "FAIL: killed run still wrote a report"; exit 1; }
[[ "$DONE" -lt "$CELLS" ]] || { echo "FAIL: run finished before the kill; grow the plan"; exit 1; }

echo "resume after SIGKILL..."
"$NISQC" sweep "${PLAN[@]}" --resume "$DIR/sweep.journal" --expect-cells "$CELLS" \
    --output "$DIR/resumed.json" 2>"$DIR/resume.log"
grep -q "resuming from" "$DIR/resume.log" || { echo "FAIL: no resume message"; cat "$DIR/resume.log"; exit 1; }
grep -q "resumed without recomputation" "$DIR/resume.log" || { echo "FAIL: no journal hits"; cat "$DIR/resume.log"; exit 1; }
"$NISQC" sweep --canonicalize "$DIR/resumed.json" --output "$DIR/resumed.canon"
cmp "$DIR/ref.canon" "$DIR/resumed.canon" || { echo "FAIL: resumed report differs from reference"; exit 1; }
echo "ok   resumed report is byte-identical to the uninterrupted run"

echo "resume over a torn journal tail..."
printf 'J1 242 0123456789abcdef {"kind": "cell", "key": {' >> "$DIR/sweep.journal"
"$NISQC" sweep "${PLAN[@]}" --resume "$DIR/sweep.journal" --expect-cells "$CELLS" \
    --output "$DIR/torn.json" 2>"$DIR/torn.log"
grep -q "truncated" "$DIR/torn.log" || { echo "FAIL: no truncation warning"; cat "$DIR/torn.log"; exit 1; }
"$NISQC" sweep --canonicalize "$DIR/torn.json" --output "$DIR/torn.canon"
cmp "$DIR/ref.canon" "$DIR/torn.canon" || { echo "FAIL: torn-tail resume differs from reference"; exit 1; }
echo "ok   torn tail truncated, resume still byte-identical"

echo "crash-resume smoke test passed"
