#!/usr/bin/env bash
# Smoke test for the supervised multi-worker serve: boot three worker
# shards over a shared journal directory, SIGKILL whichever shard a
# journaled sweep is routed to mid-run, and require that the fleet stays
# live, the (re)tried request succeeds, and the dead shard is restarted
# exactly once.
#
# Usage: scripts/worker_crash_smoke.sh [path/to/nisqc]
set -euo pipefail

NISQC="${1:-target/release/nisqc}"
PORT="${WORKER_SMOKE_PORT:-7982}"
ADDR="127.0.0.1:${PORT}"
DIR="$(mktemp -d)"
LOG="$(mktemp)"

"$NISQC" serve --listen "$ADDR" --workers 3 \
    --journal-dir "$DIR/journals" --runtime-dir "$DIR/run" 2>"$LOG" &
SUP_PID=$!
trap 'kill -9 $SUP_PID 2>/dev/null || true; rm -rf "$DIR"' EXIT

# Wait for the whole fleet to come up.
for _ in $(seq 1 200); do
    grep -q "supervising 3 workers" "$LOG" && break
    kill -0 $SUP_PID 2>/dev/null || { echo "supervisor died early"; cat "$LOG"; exit 1; }
    sleep 0.1
done
grep -q "supervising 3 workers" "$LOG" || { echo "supervisor never came up"; cat "$LOG"; exit 1; }

# One request, one response line, via a short-lived TCP client.
request() {
    python3 - "$ADDR" "$1" <<'EOF'
import socket, sys
host, port = sys.argv[1].rsplit(":", 1)
with socket.create_connection((host, int(port)), timeout=120) as s:
    s.sendall(sys.argv[2].encode() + b"\n")
    f = s.makefile("r")
    print(f.readline().strip())
EOF
}

# A sweep heavy enough (720 cells) to stay in flight for seconds — the
# kill window — journaled so the surviving shard can replay the dead
# shard's finished prefix instead of recomputing it.
RUN='{"op": "run", "id": "smoke", "resume_key": "worker-crash-smoke", "plan": {"benchmarks": "all", "mappers": "table1", "days": "0..10", "trials": 65536, "sim_seed": 1, "journal": true}}'

RESP_FILE="$DIR/first-response"
( request "$RUN" > "$RESP_FILE" ) &
REQ_PID=$!

# Find the shard the sweep landed on and SIGKILL it mid-run.
VICTIM=""
for _ in $(seq 1 200); do
    VICTIM=$(request '{"op": "stats"}' | python3 -c '
import json, sys
stats = json.load(sys.stdin)["stats"]
busy = [w["pid"] for w in stats["workers"] if w["pending"] > 0]
print(busy[0] if busy else "")')
    [[ -n "$VICTIM" ]] && break
    sleep 0.05
done
[[ -n "$VICTIM" ]] || { echo "FAIL: sweep was never routed to a shard"; exit 1; }
kill -9 "$VICTIM"
echo "ok   SIGKILLed worker pid $VICTIM mid-sweep"

# The fleet answers while the sweep fails over.
R=$(request '{"op": "ping", "id": "live"}')
[[ "$R" == *'"status": "ok"'* ]] || { echo "FAIL: fleet not live after kill: $R"; exit 1; }
echo "ok   fleet live during failover"

# The in-flight request resolves: transparently re-dispatched (ok) or,
# at worst, a coded retryable loss.
wait $REQ_PID
FIRST=$(cat "$RESP_FILE")
case "$FIRST" in
    *'"status": "ok"'*) echo "ok   transparent failover" ;;
    *'"code": "worker-lost"'*) echo "ok   coded retryable loss" ;;
    *) echo "FAIL: unexpected first response: $FIRST"; exit 1 ;;
esac

# A retried identical request succeeds, served from the shared journal.
R=$(request "$RUN")
[[ "$R" == *'"status": "ok"'* ]] || { echo "FAIL: retried request failed: $R"; exit 1; }
echo "ok   retried request succeeds"

# The dead shard comes back: every shard alive, exactly one restart.
RESTARTS=""
for _ in $(seq 1 200); do
    RESTARTS=$(request '{"op": "stats"}' | python3 -c '
import json, sys
stats = json.load(sys.stdin)["stats"]
alive = all(w["alive"] for w in stats["workers"])
print(stats["supervisor"]["restarts"] if alive else "")')
    [[ -n "$RESTARTS" ]] && break
    sleep 0.1
done
[[ "$RESTARTS" == "1" ]] || { echo "FAIL: expected exactly one restart, got '${RESTARTS}'"; exit 1; }
echo "ok   exactly one restart"

# SIGINT shuts the fleet down cleanly with exit 0.
kill -INT $SUP_PID
for _ in $(seq 1 100); do
    kill -0 $SUP_PID 2>/dev/null || break
    sleep 0.1
done
if kill -0 $SUP_PID 2>/dev/null; then
    echo "FAIL shutdown: supervisor still running after SIGINT"
    exit 1
fi
STATUS=0
wait $SUP_PID || STATUS=$?
if [[ $STATUS -ne 0 ]]; then
    echo "FAIL shutdown: exit status $STATUS"
    cat "$LOG"
    exit 1
fi
grep -q "supervisor shut down" "$LOG" || { echo "FAIL shutdown: no shutdown message"; cat "$LOG"; exit 1; }
echo "ok   sigint-shutdown"
echo "worker crash smoke test passed"
