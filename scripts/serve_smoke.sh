#!/usr/bin/env bash
# Smoke test for `nisqc serve`: start the daemon, exercise the protocol's
# happy path and its rejection paths from a plain bash/python client, then
# check SIGINT drains cleanly with exit 0.
#
# Usage: scripts/serve_smoke.sh [path/to/nisqc]
set -euo pipefail

NISQC="${1:-target/release/nisqc}"
PORT="${SERVE_SMOKE_PORT:-7979}"
ADDR="127.0.0.1:${PORT}"
LOG="$(mktemp)"

"$NISQC" serve --listen "$ADDR" --timeout-ms 10000 2>"$LOG" &
SERVER_PID=$!
trap 'kill -9 $SERVER_PID 2>/dev/null || true' EXIT

# Wait for the listening line.
for _ in $(seq 1 100); do
    grep -q "listening on" "$LOG" && break
    kill -0 $SERVER_PID 2>/dev/null || { echo "server died early"; cat "$LOG"; exit 1; }
    sleep 0.1
done
grep -q "listening on" "$LOG" || { echo "server never came up"; cat "$LOG"; exit 1; }

# One request, one response line, via a short-lived TCP client.
request() {
    python3 - "$ADDR" "$1" <<'EOF'
import socket, sys
host, port = sys.argv[1].rsplit(":", 1)
with socket.create_connection((host, int(port)), timeout=60) as s:
    s.sendall(sys.argv[2].encode() + b"\n")
    f = s.makefile("r")
    print(f.readline().strip())
EOF
}

expect() { # expect <name> <response> <needle>
    if [[ "$2" != *"$3"* ]]; then
        echo "FAIL $1: expected '$3' in: $2"
        exit 1
    fi
    echo "ok   $1"
}

R=$(request '{"op": "ping", "id": "smoke"}')
expect ping "$R" '"status": "ok"'

R=$(request '{"op": "run", "id": "valid", "plan": {"benchmarks": "bv4", "mappers": "qiskit", "trials": 32, "sim_seed": 1}}')
expect valid-sweep "$R" '"status": "ok"'
expect valid-sweep-report "$R" '"report": '

R=$(request '{this is not json')
expect malformed "$R" '"code": "protocol"'

R=$(request '{"op": "run", "id": "bad", "plan": {"benchmarks": "bv99"}}')
expect invalid-plan "$R" '"code": "invalid-plan"'

R=$(request '{"op": "run", "id": "huge", "plan": {"benchmarks": "bv4", "topologies": "grid-1000x1000"}}')
expect budget "$R" '"code": "budget"'

# Oversized-but-admissible work under a tight timeout: the response must
# come back bounded, as a timeout error or a partial report.
R=$(request '{"op": "run", "id": "slow", "timeout_ms": 200, "plan": {"benchmarks": "all", "mappers": "table1", "days": "0..10", "trials": 65536, "sim_seed": 1}}')
case "$R" in
    *'"code": "timeout"'*|*'"status": "partial"'*) echo "ok   timeout-bounded" ;;
    *) echo "FAIL timeout-bounded: $R"; exit 1 ;;
esac

R=$(request '{"op": "stats"}')
expect stats "$R" '"queue_depth"'

# SIGINT must drain and exit 0.
kill -INT $SERVER_PID
for _ in $(seq 1 100); do
    kill -0 $SERVER_PID 2>/dev/null || break
    sleep 0.1
done
if kill -0 $SERVER_PID 2>/dev/null; then
    echo "FAIL shutdown: server still running after SIGINT"
    exit 1
fi
STATUS=0
wait $SERVER_PID || STATUS=$?
trap - EXIT
if [[ $STATUS -ne 0 ]]; then
    echo "FAIL shutdown: exit status $STATUS"
    cat "$LOG"
    exit 1
fi
grep -q "drained and shut down" "$LOG" || { echo "FAIL shutdown: no drain message"; cat "$LOG"; exit 1; }
echo "ok   sigint-drain"
echo "serve smoke test passed"
